//! The discrete-event queue: a deterministic two-tier calendar/ladder scheduler.
//!
//! Events are ordered by firing time, then by a **content-derived tie-break** that is
//! independent of insertion order: creation time first (an event scheduled earlier in
//! simulated time fires first among same-instant events, which is what a global FIFO
//! gives almost everywhere), then a deterministic rank over the event class and its
//! identifiers (flow, node, link, packet). A monotone per-queue sequence number is the
//! final fallback for fully identical keys, so same-engine runs stay FIFO-stable.
//!
//! Deriving the order from content rather than from insertion history is what makes
//! the partitioned engine (see the `shard` module) reproduce the sequential engine's
//! event order exactly: a shard inserts a cross-boundary packet when the barrier
//! delivers it, not when its sender transmitted it, so insertion order differs between
//! shard counts — but the content key does not.
//!
//! # Structure: bucket wheel + far-future overflow
//!
//! The queue is the hottest data structure in the simulator: every packet hop pushes
//! and pops one [`Event`]. A binary heap pays an `O(log n)` sift on a ~64-byte key
//! comparison for *every* push and pop; at 10⁵–10⁶ pending events those sifts dominate
//! the run. The queue is therefore a calendar/ladder scheduler with two tiers:
//!
//! * **Near future — the bucket wheel.** Time is cut into fixed-width buckets
//!   (`bucket width` defaults to the per-hop latency quantum and is derived from the
//!   topology's minimum link latency by the engine — the same quantum the shard
//!   lookahead uses, so one bucket ≈ one hop's worth of events). The wheel covers the
//!   next [`WHEEL_SLOTS`] buckets; pushing into it is `O(1)` (append to the bucket's
//!   unsorted `Vec`).
//! * **Far future — the overflow heap.** Events beyond the wheel horizon (long RTO
//!   timers, the hard-stop event, pre-injected arrival backlogs) sit in a min-heap and
//!   spill into the wheel bucket-by-bucket as time advances.
//!
//! A bucket is sorted **lazily**, by the full deterministic key, only when it becomes
//! the *current* bucket; popped events then stream out of a sorted run with no
//! per-event comparisons. Same-bucket events scheduled while the bucket is draining
//! (same-instant timers, forwarding chains) are placed by binary search into the
//! not-yet-popped tail of the run. Amortized push/pop is `O(1)` for wheel events and
//! `O(log n)` only for the far-future tier.
//!
//! # Why the total order survives the restructure
//!
//! Popping always returns the globally minimal key, exactly as the heap did:
//!
//! * buckets partition time, and the current bucket's range is `<=` every other
//!   pending event's, so the global minimum lives in the current run;
//! * the current run is sorted by the full key `(at, created, class, content, seq)`
//!   and in-run insertions maintain that order (an event scheduled *behind* the
//!   current bucket — e.g. a cross-shard timer clamped to `now` — binary-searches to
//!   the front of the remaining tail, exactly where the heap would have popped it);
//! * overflow events migrate into a bucket before that bucket is sorted, so they
//!   participate in the same in-bucket order.
//!
//! Sequence numbers are assigned at push time in the same order as before, so the
//! popped sequence is **bit-identical** to the binary-heap implementation — every
//! figure table, cached record and shard-count-invariance fingerprint is preserved.
//! `tests/event_queue_prop.rs` pins this differentially against a reference heap.
//!
//! # Why events are small
//!
//! [`EventKind`] never carries a large payload inline — a flow arrival boxes its
//! `FlowSpec` (one allocation per *flow*) and an in-flight packet is parked in the
//! engine's recycled packet pool and referenced by a [`PacketSlot`] (no allocation per
//! *hop* in steady state). This keeps `size_of::<Event>()` at a few machine words, so
//! bucket sorts and in-run insertions move little memory.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use crate::flow::FlowSpec;
use crate::ids::{FlowId, LinkId, NodeId};
use crate::time::SimTime;

/// Timer classes used by transport agents. The meaning of each class is up to the
/// protocol; the engine merely delivers them back to the owning host.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TimerKind {
    /// Retransmission timeout (TCP-style).
    Rto,
    /// Rate-pacing timer: time to hand the next packet to the NIC.
    Pacing,
    /// PDQ probe timer for paused flows.
    Probe,
    /// M-PDQ subflow re-balancing timer.
    Rebalance,
    /// Protocol-defined timer class.
    Custom(u8),
}

/// A handle to an in-flight packet parked in the engine's packet pool while it waits
/// for its propagation/processing delay to elapse. Pool slots are recycled, so packet
/// hops allocate nothing in steady state; the slot is only meaningful to the engine
/// that issued it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketSlot(pub u32);

/// What happens at an instant of simulated time.
#[derive(Clone, Debug)]
pub enum EventKind {
    /// A new flow arrives at its source host. Boxed: a `FlowSpec` is ~10× the size of
    /// every other variant and would otherwise inflate the whole queue.
    FlowArrival(Box<FlowSpec>),
    /// A packet has finished propagation + processing and is now at `node`.
    PacketAtNode {
        /// Node the packet is at.
        node: NodeId,
        /// Where the packet is parked in the engine's packet pool.
        packet: PacketSlot,
        /// Flow the packet belongs to — the primary same-instant ordering key, so
        /// that ordering is preserved under monotone flow-id relabelings.
        flow: FlowId,
        /// Content-derived subkey (see [`crate::engine::packet_tie`]) separating
        /// same-flow packets: pool slots are engine-local and
        /// insertion-order-dependent, so the key is computed from the packet itself
        /// before it is parked.
        tie: u64,
    },
    /// The packet currently being serialized on `link` has been fully transmitted.
    TransmitDone {
        /// The transmitting link.
        link: LinkId,
    },
    /// A host timer fires.
    Timer {
        /// Host that set the timer.
        node: NodeId,
        /// Flow the timer belongs to.
        flow: FlowId,
        /// Timer class.
        kind: TimerKind,
        /// Opaque token chosen by the agent (used to ignore stale timers).
        token: u64,
        /// The flow's timer generation at scheduling time; the engine drops the event
        /// without a callback if the flow's generation has moved on (lazy
        /// cancellation — see `Ctx::cancel_flow_timers`).
        gen: u32,
    },
    /// A periodic link-controller tick (e.g. the PDQ / RCP rate controller update).
    ControllerTick {
        /// The link whose controller should tick.
        link: LinkId,
    },
    /// Periodic sampling of link utilization / queue sizes for traces.
    TraceSample,
    /// Hard stop of the simulation.
    Stop,
}

/// Mix two words into a well-distributed 64-bit key (splitmix-style). Used to build
/// content tie-break keys that are stable across engines but unlikely to collide.
pub(crate) fn mix(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.rotate_left(31);
    x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 29;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^ (x >> 32)
}

impl EventKind {
    /// Rank of the event class among same-instant events. Flow arrivals fire before
    /// packet deliveries, which fire before transmit completions, timers and ticks —
    /// a fixed convention both engines share.
    fn class_rank(&self) -> u8 {
        match self {
            EventKind::FlowArrival(_) => 0,
            EventKind::PacketAtNode { .. } => 1,
            EventKind::TransmitDone { .. } => 2,
            EventKind::Timer { .. } => 3,
            EventKind::ControllerTick { .. } => 4,
            EventKind::TraceSample => 5,
            EventKind::Stop => 6,
        }
    }

    /// Content-derived `(primary, subkey)` ordering events of the same class at the
    /// same instant. The primary key is the owning flow's id (or link's id), so flows
    /// tie-break in id order and the order is preserved under monotone flow-id
    /// relabelings; the subkey separates same-flow events and is built only from
    /// id-invariant packet/timer content. Neither component ever depends on
    /// engine-internal state such as pool slots or insertion counters — the property
    /// the partitioned engine's determinism rests on.
    fn content_key(&self) -> (u64, u64) {
        match self {
            EventKind::FlowArrival(spec) => (spec.id.value(), 0),
            EventKind::PacketAtNode {
                node, flow, tie, ..
            } => (flow.value(), mix(*tie, node.0 as u64)),
            EventKind::TransmitDone { link } => (link.0 as u64, 0),
            EventKind::Timer {
                node,
                flow,
                kind,
                token,
                ..
            } => {
                let kind_rank = match kind {
                    TimerKind::Rto => 0u64,
                    TimerKind::Pacing => 1,
                    TimerKind::Probe => 2,
                    TimerKind::Rebalance => 3,
                    TimerKind::Custom(c) => 4 + *c as u64,
                };
                (
                    flow.value(),
                    mix(*token, ((node.0 as u64) << 8) | kind_rank),
                )
            }
            EventKind::ControllerTick { link } => (link.0 as u64, 0),
            EventKind::TraceSample | EventKind::Stop => (0, 0),
        }
    }
}

/// An event scheduled for a particular time.
#[derive(Clone, Debug)]
pub struct Event {
    /// When the event fires.
    pub at: SimTime,
    /// Simulated time at which the event was scheduled (the queue's clock when
    /// `schedule` ran, or the explicit stamp passed to `schedule_created`). First
    /// tie-break among same-instant events: causes fire in scheduling order.
    pub created: SimTime,
    /// Final FIFO fallback sequence number (assigned by the queue). Only reached when
    /// `(at, created, class, content)` are all equal, i.e. for genuinely identical
    /// events within one engine.
    pub seq: u64,
    /// What to do.
    pub kind: EventKind,
}

/// The full deterministic ordering key of an [`Event`].
type EventKey = (SimTime, SimTime, u8, (u64, u64), u64);

impl Event {
    /// The full deterministic ordering key (ascending = fires first).
    fn key(&self) -> EventKey {
        (
            self.at,
            self.created,
            self.kind.class_rank(),
            self.kind.content_key(),
            self.seq,
        )
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    /// Natural ascending key order: the minimum fires first. (Min-heap users must
    /// wrap events in [`std::cmp::Reverse`]; the queue's overflow tier does.)
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}

/// Cheap telemetry counters maintained by [`EventQueue`]; see [`EventQueue::stats`].
///
/// The counters cost one integer op per queue operation, so they are always on —
/// scheduler regressions (e.g. events thrashing between the overflow tier and the
/// wheel, or buckets re-sorting pathologically often) are visible from a run's
/// summary without a profiler.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events scheduled.
    pub pushes: u64,
    /// Events popped.
    pub pops: u64,
    /// Maximum number of simultaneously pending events.
    pub peak_pending: u64,
    /// Events that spilled from the far-future overflow tier into the bucket wheel.
    pub overflow_migrations: u64,
    /// Buckets lazily sorted on becoming current (≈ one per non-empty bucket drained).
    pub buckets_sorted: u64,
}

/// Number of buckets in the near-future wheel. Power of two; with the engine's
/// per-hop bucket width (~25 µs at the paper's defaults) the wheel spans ~26 ms of
/// simulated future — comfortably past every in-flight packet and pacing timer.
const WHEEL_SLOTS: usize = 1024;
const WHEEL_WORDS: usize = WHEEL_SLOTS / 64;

/// A min-priority queue of events ordered by
/// `(time, creation time, class rank, content key)` — an insertion-order-independent
/// total order shared by the sequential and the partitioned engine.
///
/// Implemented as a two-tier calendar/ladder scheduler (see the module docs): a
/// near-future bucket wheel with lazily sorted buckets plus a far-future overflow
/// heap. The popped sequence is bit-identical to a binary heap over the same key.
#[derive(Debug)]
pub struct EventQueue {
    /// The current bucket's not-yet-popped events, sorted **descending** by key so
    /// the next event to fire is `current.last()` and popping is `Vec::pop`.
    current: Vec<Event>,
    /// Absolute index (`at / bucket_ns`) of the bucket `current` is draining.
    cursor: u64,
    /// Future buckets, by absolute index modulo [`WHEEL_SLOTS`]; unsorted. Only
    /// absolute indices in `(cursor, cursor + WHEEL_SLOTS)` live here, so a ring slot
    /// holds events of exactly one absolute bucket.
    wheel: Vec<Vec<Event>>,
    /// Bitmap of non-empty ring slots (fast next-bucket scans).
    occupied: [u64; WHEEL_WORDS],
    /// Total events parked in `wheel`.
    wheel_len: usize,
    /// Far-future tier: events at or beyond the wheel horizon, min-first.
    overflow: BinaryHeap<Reverse<Event>>,
    /// Bucket width in nanoseconds (≥ 1).
    bucket_ns: u64,
    len: usize,
    next_seq: u64,
    now: SimTime,
    stats: QueueStats,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl EventQueue {
    /// Default bucket width: one hop's latency at the paper's link defaults
    /// (propagation + per-hop processing). The engine overrides this with the actual
    /// topology's minimum link latency — the same quantum the shard lookahead uses.
    pub const DEFAULT_BUCKET_WIDTH: SimTime =
        SimTime(crate::network::DEFAULT_PROP_DELAY.0 + crate::network::DEFAULT_PROCESSING_DELAY.0);

    /// Create an empty queue with the default bucket width.
    pub fn new() -> Self {
        EventQueue::with_bucket_width(Self::DEFAULT_BUCKET_WIDTH)
    }

    /// Create an empty queue whose wheel buckets are `width` wide (clamped to ≥ 1 ns).
    ///
    /// The width trades sort batch size against wheel span: it should be on the order
    /// of the smallest inter-event latency the workload produces (for the packet
    /// engine: the topology's minimum link propagation + processing delay), so one
    /// bucket holds roughly one hop's worth of events.
    pub fn with_bucket_width(width: SimTime) -> Self {
        EventQueue {
            current: Vec::new(),
            cursor: 0,
            wheel: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; WHEEL_WORDS],
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            bucket_ns: width.as_nanos().max(1),
            len: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            stats: QueueStats::default(),
        }
    }

    /// The wheel's bucket width.
    pub fn bucket_width(&self) -> SimTime {
        SimTime::from_nanos(self.bucket_ns)
    }

    /// Change the bucket width, redistributing any pending events. Sequence numbers
    /// (and therefore the deterministic total order) are preserved.
    pub fn set_bucket_width(&mut self, width: SimTime) {
        let width = width.as_nanos().max(1);
        if width == self.bucket_ns {
            return;
        }
        let mut all: Vec<Event> = Vec::with_capacity(self.len);
        all.append(&mut self.current);
        for slot in self.wheel.iter_mut() {
            all.append(slot);
        }
        all.extend(self.overflow.drain().map(|Reverse(e)| e));
        self.occupied = [0; WHEEL_WORDS];
        self.wheel_len = 0;
        self.bucket_ns = width;
        self.cursor = self.now.as_nanos() / width;
        self.len = 0;
        for ev in all {
            self.insert(ev);
        }
    }

    /// Advance the queue's notion of the current simulated time; subsequent
    /// `schedule` calls stamp their events as created now. The engine calls this as
    /// it dispatches each event.
    pub fn set_now(&mut self, now: SimTime) {
        self.now = now;
    }

    /// Schedule `kind` to fire at time `at`, created at the current clock.
    pub fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let created = self.now;
        self.schedule_created(at, created, kind);
    }

    /// Schedule `kind` to fire at `at` with an explicit creation stamp. The
    /// partitioned engine uses this to ingest cross-shard events with the sender's
    /// send time, so the merged order matches what a single queue would have produced.
    pub fn schedule_created(&mut self, at: SimTime, created: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.pushes += 1;
        self.insert(Event {
            at,
            created,
            seq,
            kind,
        });
        self.stats.peak_pending = self.stats.peak_pending.max(self.len as u64);
    }

    /// Place an event in the tier its firing time selects.
    fn insert(&mut self, ev: Event) {
        let b = ev.at.as_nanos() / self.bucket_ns;
        if b <= self.cursor {
            // Lands in (or before) the bucket currently being drained: binary-search
            // into the sorted remaining run. `current` is descending, so the prefix
            // holds the strictly larger keys. An event behind the current bucket
            // (e.g. a cross-shard timer clamped to `now`) lands at the very end —
            // popped next, exactly as a heap would order it.
            let key = ev.key();
            let idx = self.current.partition_point(|e| e.key() > key);
            self.current.insert(idx, ev);
        } else if b < self.cursor + WHEEL_SLOTS as u64 {
            let slot = (b % WHEEL_SLOTS as u64) as usize;
            self.wheel[slot].push(ev);
            self.occupied[slot / 64] |= 1u64 << (slot % 64);
            self.wheel_len += 1;
        } else {
            self.overflow.push(Reverse(ev));
        }
        self.len += 1;
    }

    /// Absolute index of the next non-empty wheel bucket strictly after the cursor.
    ///
    /// Ring slots only ever hold absolute indices in `(cursor, cursor + WHEEL_SLOTS)`,
    /// so the first set bit at ring distance `d` is exactly bucket `cursor + d`.
    fn next_occupied_abs(&self) -> Option<u64> {
        if self.wheel_len == 0 {
            return None;
        }
        let n = WHEEL_SLOTS as u64;
        let mut d = 1u64;
        while d < n {
            let slot = ((self.cursor + d) % n) as usize;
            let word = self.occupied[slot / 64];
            if word == 0 {
                // Skip to the next bitmap word boundary.
                d += 64 - (slot % 64) as u64;
                continue;
            }
            if word & (1u64 << (slot % 64)) != 0 {
                return Some(self.cursor + d);
            }
            d += 1;
        }
        None
    }

    /// Make the earliest non-empty bucket current: take its wheel slot, spill every
    /// overflow event that belongs to it, and sort the union by the full key. Returns
    /// false if no events are pending anywhere.
    fn advance(&mut self) -> bool {
        debug_assert!(self.current.is_empty());
        let wheel_next = self.next_occupied_abs();
        let over_next = self
            .overflow
            .peek()
            .map(|Reverse(e)| e.at.as_nanos() / self.bucket_ns);
        let b = match (wheel_next, over_next) {
            (Some(w), Some(o)) => w.min(o),
            (Some(w), None) => w,
            (None, Some(o)) => o,
            (None, None) => return false,
        };
        self.cursor = b;
        let slot = (b % WHEEL_SLOTS as u64) as usize;
        if self.occupied[slot / 64] & (1u64 << (slot % 64)) != 0 {
            // By the ring invariant this slot holds exactly bucket `b`'s events.
            std::mem::swap(&mut self.current, &mut self.wheel[slot]);
            self.occupied[slot / 64] &= !(1u64 << (slot % 64));
            self.wheel_len -= self.current.len();
        }
        let bucket_end = (b + 1).saturating_mul(self.bucket_ns);
        while let Some(Reverse(e)) = self.overflow.peek() {
            if e.at.as_nanos() >= bucket_end {
                break;
            }
            let Reverse(e) = self.overflow.pop().expect("peeked overflow event");
            self.current.push(e);
            self.stats.overflow_migrations += 1;
        }
        // Lazy in-bucket sort: descending, so pops come off the tail. Keys are
        // unique (seq fallback), so stability is irrelevant; caching the 41-byte
        // keys beats recomputing the content key O(k log k) times.
        self.current.sort_by_cached_key(|e| Reverse(e.key()));
        self.stats.buckets_sorted += 1;
        true
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        loop {
            if let Some(ev) = self.current.pop() {
                self.len -= 1;
                self.stats.pops += 1;
                return Some(ev);
            }
            if !self.advance() {
                return None;
            }
        }
    }

    /// Remove and return the earliest event **if it fires strictly before `until`**;
    /// leave the queue untouched otherwise.
    ///
    /// This is the batched window drain the partitioned engine's shard loop runs on:
    /// one call per event replaces the `peek_time`-compare-then-`pop` round-trip, and
    /// consecutive calls inside one window stream straight off the current bucket's
    /// sorted run (a `Vec::pop` and one time comparison — no re-peeking, no sifting).
    pub fn pop_window(&mut self, until: SimTime) -> Option<Event> {
        loop {
            if let Some(ev) = self.current.last() {
                if ev.at >= until {
                    return None;
                }
                let ev = self.current.pop().expect("checked non-empty");
                self.len -= 1;
                self.stats.pops += 1;
                return Some(ev);
            }
            if !self.advance() {
                return None;
            }
        }
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(ev) = self.current.last() {
            return Some(ev.at);
        }
        // The current run is drained: the earliest event is the earliest firing time
        // in the next non-empty bucket (its wheel slot is still unsorted) or the
        // overflow minimum, whichever is smaller. Later buckets start later than
        // either, so this scan is exact.
        let wheel_min = self.next_occupied_abs().map(|b| {
            let slot = (b % WHEEL_SLOTS as u64) as usize;
            self.wheel[slot]
                .iter()
                .map(|e| e.at)
                .min()
                .expect("occupied slot is non-empty")
        });
        let over_min = self.overflow.peek().map(|Reverse(e)| e.at);
        match (wheel_min, over_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A snapshot of the queue's telemetry counters.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), EventKind::Stop);
        q.schedule(SimTime::from_micros(10), EventKind::TraceSample);
        q.schedule(SimTime::from_micros(20), EventKind::Stop);
        let times: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.as_nanos())
            .collect();
        assert_eq!(times, vec![10_000, 20_000, 30_000]);
    }

    fn timer(token: u64) -> EventKind {
        EventKind::Timer {
            node: NodeId(0),
            flow: FlowId(token),
            kind: TimerKind::Rto,
            token,
            gen: 0,
        }
    }

    #[test]
    fn ties_are_insertion_order_independent() {
        // The partitioned engine's determinism rests on this: two queues fed the same
        // same-instant events in different orders pop them in the same order.
        let t = SimTime::from_micros(5);
        let mut forward = EventQueue::new();
        let mut reverse = EventQueue::new();
        for token in 1..=5 {
            forward.schedule(t, timer(token));
        }
        for token in (1..=5).rev() {
            reverse.schedule(t, timer(token));
        }
        let order = |q: &mut EventQueue| -> Vec<u64> {
            std::iter::from_fn(|| q.pop())
                .map(|e| match e.kind {
                    EventKind::Timer { token, .. } => token,
                    _ => unreachable!(),
                })
                .collect()
        };
        assert_eq!(order(&mut forward), order(&mut reverse));
    }

    #[test]
    fn creation_time_orders_same_instant_events() {
        // Among events firing at the same instant, the one scheduled earlier in
        // simulated time fires first — the causal analogue of global FIFO.
        let t = SimTime::from_micros(5);
        let mut q = EventQueue::new();
        q.set_now(SimTime::from_micros(3));
        q.schedule(t, timer(7)); // created later...
        q.schedule_created(t, SimTime::from_micros(1), timer(9)); // ...but this was created first
        let first = q.pop().unwrap();
        assert_eq!(first.created, SimTime::from_micros(1));
        match first.kind {
            EventKind::Timer { token, .. } => assert_eq!(token, 9),
            _ => unreachable!(),
        }
    }

    #[test]
    fn class_rank_orders_same_instant_events() {
        // At equal (at, created), flow arrivals outrank packet deliveries, which
        // outrank transmit completions and timers.
        let t = SimTime::from_micros(5);
        let mut q = EventQueue::new();
        q.schedule(t, timer(1));
        q.schedule(t, EventKind::TransmitDone { link: LinkId(0) });
        q.schedule(t, EventKind::Stop);
        let ranks: Vec<u8> = std::iter::from_fn(|| q.pop())
            .map(|e| e.kind.class_rank())
            .collect();
        assert_eq!(ranks, vec![2, 3, 6]);
    }

    #[test]
    fn events_stay_small() {
        // Buckets move events by value on sort/insert; a regression that embeds a
        // Packet or FlowSpec inline would show up here.
        assert!(
            std::mem::size_of::<Event>() <= 64,
            "Event grew to {} bytes",
            std::mem::size_of::<Event>()
        );
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_micros(7), EventKind::Stop);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
    }

    #[test]
    fn far_future_events_cross_the_overflow_tier() {
        // A tiny bucket width forces everything beyond ~WHEEL_SLOTS ns into the
        // overflow heap; pops must still come out in exact key order, and the
        // telemetry must show the migrations.
        let mut q = EventQueue::with_bucket_width(SimTime::from_nanos(1));
        let times: Vec<u64> = vec![5, 2_000, 1_000_000, 3, 70_000, 2_000_000, 1];
        for &t in &times {
            q.schedule(SimTime::from_nanos(t), timer(t));
        }
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.as_nanos())
            .collect();
        assert_eq!(popped, sorted);
        let stats = q.stats();
        assert_eq!(stats.pushes, times.len() as u64);
        assert_eq!(stats.pops, times.len() as u64);
        assert_eq!(stats.peak_pending, times.len() as u64);
        assert!(
            stats.overflow_migrations >= 4,
            "expected far-future events to migrate, got {stats:?}"
        );
    }

    #[test]
    fn same_bucket_push_during_drain_keeps_order() {
        // Schedule two same-bucket events, pop one, then push another event landing
        // between the popped one and the remaining one: it must pop next.
        let w = EventQueue::DEFAULT_BUCKET_WIDTH.as_nanos();
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(w / 8), timer(1));
        q.schedule(SimTime::from_nanos(w / 2), timer(2));
        let first = q.pop().unwrap();
        assert_eq!(first.at.as_nanos(), w / 8);
        q.set_now(first.at);
        q.schedule(SimTime::from_nanos(w / 4), timer(3));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.as_nanos())
            .collect();
        assert_eq!(order, vec![w / 4, w / 2]);
    }

    #[test]
    fn pop_window_is_exclusive_at_the_boundary() {
        // An event exactly at `until` must stay; one a nanosecond earlier must pop.
        let mut q = EventQueue::new();
        let until = SimTime::from_micros(50);
        q.schedule(until, timer(1));
        q.schedule(SimTime::from_nanos(until.as_nanos() - 1), timer(2));
        let ev = q.pop_window(until).expect("event before the boundary");
        assert_eq!(ev.at.as_nanos(), until.as_nanos() - 1);
        assert!(q.pop_window(until).is_none(), "boundary event leaked");
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(until));
    }

    #[test]
    fn windowed_drains_match_global_pop_order() {
        // Splitting the same schedule into conservative-lookahead windows must
        // reproduce the un-windowed pop sequence exactly — the property the shard
        // loop's batched drain rests on.
        let schedule: Vec<(u64, u64)> = (0..200u64)
            .map(|i| ((i * 7919) % 500 * 1_000, i)) // many same-instant collisions
            .collect();
        let mut global = EventQueue::new();
        let mut windowed = EventQueue::new();
        for &(at, tok) in &schedule {
            global.schedule(SimTime::from_nanos(at), timer(tok));
            windowed.schedule(SimTime::from_nanos(at), timer(tok));
        }
        let reference: Vec<Event> = std::iter::from_fn(|| global.pop()).collect();
        let mut drained: Vec<Event> = Vec::new();
        let window = 37_000u64; // deliberately misaligned with bucket width
        let mut t = 0u64;
        while drained.len() < reference.len() {
            t += window;
            while let Some(ev) = windowed.pop_window(SimTime::from_nanos(t)) {
                drained.push(ev);
            }
        }
        assert_eq!(drained, reference);
    }

    #[test]
    fn set_bucket_width_preserves_order_and_pending_events() {
        let mut q = EventQueue::with_bucket_width(SimTime::from_micros(1));
        for i in 0..50u64 {
            q.schedule(SimTime::from_nanos((i * 31) % 40 * 1_000), timer(i));
        }
        let first = q.pop().unwrap();
        q.set_now(first.at);
        q.set_bucket_width(SimTime::from_millis(1));
        assert_eq!(q.bucket_width(), SimTime::from_millis(1));
        assert_eq!(q.len(), 49);
        let mut rest: Vec<Event> = std::iter::from_fn(|| q.pop()).collect();
        rest.insert(0, first);
        for pair in rest.windows(2) {
            assert!(pair[0] < pair[1], "order broken across re-bucketing");
        }
        assert_eq!(rest.len(), 50);
    }
}
