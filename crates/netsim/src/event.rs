//! The discrete-event queue.
//!
//! Events are ordered by time, with a monotonically increasing sequence number breaking
//! ties so that two events scheduled for the same instant fire in FIFO order. This makes
//! the simulator deterministic for a fixed seed and insertion order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::flow::FlowSpec;
use crate::ids::{FlowId, LinkId, NodeId};
use crate::packet::Packet;
use crate::time::SimTime;

/// Timer classes used by transport agents. The meaning of each class is up to the
/// protocol; the engine merely delivers them back to the owning host.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TimerKind {
    /// Retransmission timeout (TCP-style).
    Rto,
    /// Rate-pacing timer: time to hand the next packet to the NIC.
    Pacing,
    /// PDQ probe timer for paused flows.
    Probe,
    /// M-PDQ subflow re-balancing timer.
    Rebalance,
    /// Protocol-defined timer class.
    Custom(u8),
}

/// What happens at an instant of simulated time.
#[derive(Clone, Debug)]
pub enum EventKind {
    /// A new flow arrives at its source host.
    FlowArrival(FlowSpec),
    /// A packet has finished propagation + processing and is now at `node`.
    PacketAtNode {
        /// Node the packet is at.
        node: NodeId,
        /// The packet itself.
        packet: Packet,
    },
    /// The packet currently being serialized on `link` has been fully transmitted.
    TransmitDone {
        /// The transmitting link.
        link: LinkId,
    },
    /// A host timer fires.
    Timer {
        /// Host that set the timer.
        node: NodeId,
        /// Flow the timer belongs to.
        flow: FlowId,
        /// Timer class.
        kind: TimerKind,
        /// Opaque token chosen by the agent (used to ignore stale timers).
        token: u64,
    },
    /// A periodic link-controller tick (e.g. the PDQ / RCP rate controller update).
    ControllerTick {
        /// The link whose controller should tick.
        link: LinkId,
    },
    /// Periodic sampling of link utilization / queue sizes for traces.
    TraceSample,
    /// Hard stop of the simulation.
    Stop,
}

/// An event scheduled for a particular time.
#[derive(Clone, Debug)]
pub struct Event {
    /// When the event fires.
    pub at: SimTime,
    /// FIFO tie-break sequence number (assigned by the queue).
    pub seq: u64,
    /// What to do.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-priority queue of events ordered by `(time, insertion sequence)`.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedule `kind` to fire at time `at`.
    pub fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), EventKind::Stop);
        q.schedule(SimTime::from_micros(10), EventKind::TraceSample);
        q.schedule(SimTime::from_micros(20), EventKind::Stop);
        let times: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.as_nanos())
            .collect();
        assert_eq!(times, vec![10_000, 20_000, 30_000]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        q.schedule(
            t,
            EventKind::Timer {
                node: NodeId(0),
                flow: FlowId(1),
                kind: TimerKind::Rto,
                token: 1,
            },
        );
        q.schedule(
            t,
            EventKind::Timer {
                node: NodeId(0),
                flow: FlowId(2),
                kind: TimerKind::Rto,
                token: 2,
            },
        );
        q.schedule(
            t,
            EventKind::Timer {
                node: NodeId(0),
                flow: FlowId(3),
                kind: TimerKind::Rto,
                token: 3,
            },
        );
        let tokens: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tokens, vec![1, 2, 3]);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_micros(7), EventKind::Stop);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
    }
}
