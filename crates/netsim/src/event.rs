//! The discrete-event queue.
//!
//! Events are ordered by firing time, then by a **content-derived tie-break** that is
//! independent of insertion order: creation time first (an event scheduled earlier in
//! simulated time fires first among same-instant events, which is what a global FIFO
//! gives almost everywhere), then a deterministic rank over the event class and its
//! identifiers (flow, node, link, packet). A monotone per-queue sequence number is the
//! final fallback for fully identical keys, so same-engine runs stay FIFO-stable.
//!
//! Deriving the order from content rather than from insertion history is what makes
//! the partitioned engine (see the `shard` module) reproduce the sequential engine's
//! event order exactly: a shard inserts a cross-boundary packet when the barrier
//! delivers it, not when its sender transmitted it, so insertion order differs between
//! shard counts — but the content key does not.
//!
//! # Why events are small
//!
//! The heap is the hottest data structure in the simulator: every packet hop pushes and
//! pops one [`Event`]. [`EventKind`] therefore never carries a large payload inline —
//! a flow arrival boxes its `FlowSpec` (one allocation per *flow*) and an in-flight
//! packet is parked in the engine's recycled packet pool and referenced by a
//! [`PacketSlot`] (no allocation per *hop* in steady state). This keeps
//! `size_of::<Event>()` at a few machine words, so sift-up/sift-down moves stay cheap.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::flow::FlowSpec;
use crate::ids::{FlowId, LinkId, NodeId};
use crate::time::SimTime;

/// Timer classes used by transport agents. The meaning of each class is up to the
/// protocol; the engine merely delivers them back to the owning host.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TimerKind {
    /// Retransmission timeout (TCP-style).
    Rto,
    /// Rate-pacing timer: time to hand the next packet to the NIC.
    Pacing,
    /// PDQ probe timer for paused flows.
    Probe,
    /// M-PDQ subflow re-balancing timer.
    Rebalance,
    /// Protocol-defined timer class.
    Custom(u8),
}

/// A handle to an in-flight packet parked in the engine's packet pool while it waits
/// for its propagation/processing delay to elapse. Pool slots are recycled, so packet
/// hops allocate nothing in steady state; the slot is only meaningful to the engine
/// that issued it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketSlot(pub u32);

/// What happens at an instant of simulated time.
#[derive(Clone, Debug)]
pub enum EventKind {
    /// A new flow arrives at its source host. Boxed: a `FlowSpec` is ~10× the size of
    /// every other variant and would otherwise inflate the whole heap.
    FlowArrival(Box<FlowSpec>),
    /// A packet has finished propagation + processing and is now at `node`.
    PacketAtNode {
        /// Node the packet is at.
        node: NodeId,
        /// Where the packet is parked in the engine's packet pool.
        packet: PacketSlot,
        /// Flow the packet belongs to — the primary same-instant ordering key, so
        /// that ordering is preserved under monotone flow-id relabelings.
        flow: FlowId,
        /// Content-derived subkey (see [`crate::engine::packet_tie`]) separating
        /// same-flow packets: pool slots are engine-local and
        /// insertion-order-dependent, so the key is computed from the packet itself
        /// before it is parked.
        tie: u64,
    },
    /// The packet currently being serialized on `link` has been fully transmitted.
    TransmitDone {
        /// The transmitting link.
        link: LinkId,
    },
    /// A host timer fires.
    Timer {
        /// Host that set the timer.
        node: NodeId,
        /// Flow the timer belongs to.
        flow: FlowId,
        /// Timer class.
        kind: TimerKind,
        /// Opaque token chosen by the agent (used to ignore stale timers).
        token: u64,
        /// The flow's timer generation at scheduling time; the engine drops the event
        /// without a callback if the flow's generation has moved on (lazy
        /// cancellation — see `Ctx::cancel_flow_timers`).
        gen: u32,
    },
    /// A periodic link-controller tick (e.g. the PDQ / RCP rate controller update).
    ControllerTick {
        /// The link whose controller should tick.
        link: LinkId,
    },
    /// Periodic sampling of link utilization / queue sizes for traces.
    TraceSample,
    /// Hard stop of the simulation.
    Stop,
}

/// Mix two words into a well-distributed 64-bit key (splitmix-style). Used to build
/// content tie-break keys that are stable across engines but unlikely to collide.
pub(crate) fn mix(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.rotate_left(31);
    x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 29;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^ (x >> 32)
}

impl EventKind {
    /// Rank of the event class among same-instant events. Flow arrivals fire before
    /// packet deliveries, which fire before transmit completions, timers and ticks —
    /// a fixed convention both engines share.
    fn class_rank(&self) -> u8 {
        match self {
            EventKind::FlowArrival(_) => 0,
            EventKind::PacketAtNode { .. } => 1,
            EventKind::TransmitDone { .. } => 2,
            EventKind::Timer { .. } => 3,
            EventKind::ControllerTick { .. } => 4,
            EventKind::TraceSample => 5,
            EventKind::Stop => 6,
        }
    }

    /// Content-derived `(primary, subkey)` ordering events of the same class at the
    /// same instant. The primary key is the owning flow's id (or link's id), so flows
    /// tie-break in id order and the order is preserved under monotone flow-id
    /// relabelings; the subkey separates same-flow events and is built only from
    /// id-invariant packet/timer content. Neither component ever depends on
    /// engine-internal state such as pool slots or insertion counters — the property
    /// the partitioned engine's determinism rests on.
    fn content_key(&self) -> (u64, u64) {
        match self {
            EventKind::FlowArrival(spec) => (spec.id.value(), 0),
            EventKind::PacketAtNode {
                node, flow, tie, ..
            } => (flow.value(), mix(*tie, node.0 as u64)),
            EventKind::TransmitDone { link } => (link.0 as u64, 0),
            EventKind::Timer {
                node,
                flow,
                kind,
                token,
                ..
            } => {
                let kind_rank = match kind {
                    TimerKind::Rto => 0u64,
                    TimerKind::Pacing => 1,
                    TimerKind::Probe => 2,
                    TimerKind::Rebalance => 3,
                    TimerKind::Custom(c) => 4 + *c as u64,
                };
                (
                    flow.value(),
                    mix(*token, ((node.0 as u64) << 8) | kind_rank),
                )
            }
            EventKind::ControllerTick { link } => (link.0 as u64, 0),
            EventKind::TraceSample | EventKind::Stop => (0, 0),
        }
    }
}

/// An event scheduled for a particular time.
#[derive(Clone, Debug)]
pub struct Event {
    /// When the event fires.
    pub at: SimTime,
    /// Simulated time at which the event was scheduled (the queue's clock when
    /// `schedule` ran, or the explicit stamp passed to `schedule_created`). First
    /// tie-break among same-instant events: causes fire in scheduling order.
    pub created: SimTime,
    /// Final FIFO fallback sequence number (assigned by the queue). Only reached when
    /// `(at, created, class, content)` are all equal, i.e. for genuinely identical
    /// events within one engine.
    pub seq: u64,
    /// What to do.
    pub kind: EventKind,
}

impl Event {
    /// The full deterministic ordering key (ascending = fires first).
    fn key(&self) -> (SimTime, SimTime, u8, (u64, u64), u64) {
        (
            self.at,
            self.created,
            self.kind.class_rank(),
            self.kind.content_key(),
            self.seq,
        )
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped first.
        other.key().cmp(&self.key())
    }
}

/// A min-priority queue of events ordered by
/// `(time, creation time, class rank, content key)` — an insertion-order-independent
/// total order shared by the sequential and the partitioned engine.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
    now: SimTime,
}

impl EventQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Advance the queue's notion of the current simulated time; subsequent
    /// `schedule` calls stamp their events as created now. The engine calls this as
    /// it dispatches each event.
    pub fn set_now(&mut self, now: SimTime) {
        self.now = now;
    }

    /// Schedule `kind` to fire at time `at`, created at the current clock.
    pub fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let created = self.now;
        self.schedule_created(at, created, kind);
    }

    /// Schedule `kind` to fire at `at` with an explicit creation stamp. The
    /// partitioned engine uses this to ingest cross-shard events with the sender's
    /// send time, so the merged order matches what a single queue would have produced.
    pub fn schedule_created(&mut self, at: SimTime, created: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event {
            at,
            created,
            seq,
            kind,
        });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), EventKind::Stop);
        q.schedule(SimTime::from_micros(10), EventKind::TraceSample);
        q.schedule(SimTime::from_micros(20), EventKind::Stop);
        let times: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.as_nanos())
            .collect();
        assert_eq!(times, vec![10_000, 20_000, 30_000]);
    }

    fn timer(token: u64) -> EventKind {
        EventKind::Timer {
            node: NodeId(0),
            flow: FlowId(token),
            kind: TimerKind::Rto,
            token,
            gen: 0,
        }
    }

    #[test]
    fn ties_are_insertion_order_independent() {
        // The partitioned engine's determinism rests on this: two queues fed the same
        // same-instant events in different orders pop them in the same order.
        let t = SimTime::from_micros(5);
        let mut forward = EventQueue::new();
        let mut reverse = EventQueue::new();
        for token in 1..=5 {
            forward.schedule(t, timer(token));
        }
        for token in (1..=5).rev() {
            reverse.schedule(t, timer(token));
        }
        let order = |q: &mut EventQueue| -> Vec<u64> {
            std::iter::from_fn(|| q.pop())
                .map(|e| match e.kind {
                    EventKind::Timer { token, .. } => token,
                    _ => unreachable!(),
                })
                .collect()
        };
        assert_eq!(order(&mut forward), order(&mut reverse));
    }

    #[test]
    fn creation_time_orders_same_instant_events() {
        // Among events firing at the same instant, the one scheduled earlier in
        // simulated time fires first — the causal analogue of global FIFO.
        let t = SimTime::from_micros(5);
        let mut q = EventQueue::new();
        q.set_now(SimTime::from_micros(3));
        q.schedule(t, timer(7)); // created later...
        q.schedule_created(t, SimTime::from_micros(1), timer(9)); // ...but this was created first
        let first = q.pop().unwrap();
        assert_eq!(first.created, SimTime::from_micros(1));
        match first.kind {
            EventKind::Timer { token, .. } => assert_eq!(token, 9),
            _ => unreachable!(),
        }
    }

    #[test]
    fn class_rank_orders_same_instant_events() {
        // At equal (at, created), flow arrivals outrank packet deliveries, which
        // outrank transmit completions and timers.
        let t = SimTime::from_micros(5);
        let mut q = EventQueue::new();
        q.schedule(t, timer(1));
        q.schedule(t, EventKind::TransmitDone { link: LinkId(0) });
        q.schedule(t, EventKind::Stop);
        let ranks: Vec<u8> = std::iter::from_fn(|| q.pop())
            .map(|e| e.kind.class_rank())
            .collect();
        assert_eq!(ranks, vec![2, 3, 6]);
    }

    #[test]
    fn events_stay_small() {
        // The heap moves events by value on every push/pop; a regression that embeds a
        // Packet or FlowSpec inline would show up here.
        assert!(
            std::mem::size_of::<Event>() <= 64,
            "Event grew to {} bytes",
            std::mem::size_of::<Event>()
        );
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_micros(7), EventKind::Stop);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
    }
}
