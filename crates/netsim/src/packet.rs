//! Packets and the in-band scheduling header.
//!
//! PDQ, D3 and RCP all communicate rate / pause decisions through a small scheduling
//! header attached to every data packet and echoed back on the corresponding ACK
//! (PDQ paper §3). We model the union of the fields used by the three protocols in a
//! single [`SchedulingHeader`] struct; the on-wire size charged to each packet is the
//! 16 bytes described in the paper (§7, footnote 11) regardless of which protocol is
//! running, so that protocol overhead comparisons stay fair.

use crate::ids::{FlowId, LinkId, NodeId};
use crate::time::SimTime;

/// Maximum transmission unit used by the simulator (Ethernet-like).
pub const MTU_BYTES: u32 = 1500;
/// Bytes of TCP/IP-style base header per packet (paper assumes ~3% overhead on 1500B).
pub const BASE_HEADER_BYTES: u32 = 40;
/// Bytes of the PDQ/D3/RCP scheduling header (paper §7: four 4-byte fields).
pub const SCHED_HEADER_BYTES: u32 = 16;
/// Maximum payload carried in a single data packet.
pub const MSS_BYTES: u32 = MTU_BYTES - BASE_HEADER_BYTES - SCHED_HEADER_BYTES;
/// Wire size of a packet that carries no payload (SYN, ACK, TERM, probe).
pub const CONTROL_PACKET_BYTES: u32 = BASE_HEADER_BYTES + SCHED_HEADER_BYTES;

/// The role a packet plays in a transport protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// Flow-initialization packet (carries the scheduling header, no payload).
    Syn,
    /// Acknowledgment of a SYN.
    SynAck,
    /// Data segment.
    Data,
    /// Acknowledgment of data (carries the echoed scheduling header).
    Ack,
    /// Flow termination (normal completion or PDQ Early Termination).
    Term,
    /// Acknowledgment of a TERM.
    TermAck,
    /// PDQ probe: a scheduling header with no data, sent by paused flows.
    Probe,
}

impl PacketKind {
    /// True for packets travelling from the flow sender towards the receiver.
    pub fn is_forward(self) -> bool {
        matches!(
            self,
            PacketKind::Syn | PacketKind::Data | PacketKind::Term | PacketKind::Probe
        )
    }
    /// True for packets travelling back from the receiver to the sender.
    pub fn is_reverse(self) -> bool {
        !self.is_forward()
    }
    /// True if a PDQ/D3/RCP switch should treat this packet like a data-direction
    /// packet for scheduling purposes (SYN, DATA and probes all carry a fresh header).
    pub fn carries_forward_header(self) -> bool {
        matches!(self, PacketKind::Syn | PacketKind::Data | PacketKind::Probe)
    }
}

/// An opaque tag identifying the switch-egress-link that paused a PDQ flow
/// (the "pauseby" field `P_H` of the paper). We use the link id directly, which is
/// unique per switch output port.
pub type PauseBy = LinkId;

/// The in-band scheduling header.
///
/// Field names follow the paper: the `H` subscript denotes the header copy of each
/// sender variable. Rates are in bits per second, times in seconds (`f64`), matching
/// the paper's fluid quantities; the header is charged [`SCHED_HEADER_BYTES`] on the
/// wire no matter how many of these fields a given protocol uses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SchedulingHeader {
    /// `R_H`: the sending rate granted so far along the path (bits/s). Senders
    /// initialize it to their maximal rate; switches only ever lower it.
    pub rate: f64,
    /// `P_H`: which switch link (if any) has paused this flow.
    pub pause_by: Option<PauseBy>,
    /// `D_H`: flow deadline (absolute simulation time), if any.
    pub deadline: Option<SimTime>,
    /// `T_H`: expected remaining flow transmission time, in seconds.
    pub expected_trans_time: f64,
    /// `RTT_H`: the sender's measured RTT in seconds (reverse-path reuse of `D_H`).
    pub rtt: f64,
    /// `I_H`: inter-probing time in units of RTTs (reverse-path reuse of `T_H`).
    pub inter_probe_rtts: f64,
    /// D3: rate desired by the sender for the next interval (bits/s).
    pub d3_desired: f64,
    /// D3: rate allocated in the previous interval, to be returned to switches (bits/s).
    pub d3_previous: f64,
    /// D3/RCP: allocation accumulated along the forward path for this interval (bits/s).
    pub d3_allocated: f64,
    /// RCP: the smallest fair-share rate advertised by switches on the path (bits/s).
    pub rcp_rate: f64,
}

impl SchedulingHeader {
    /// A header as a sender first emits it: maximal rate, nothing paused, no feedback.
    pub fn new(max_rate_bps: f64) -> Self {
        SchedulingHeader {
            rate: max_rate_bps,
            pause_by: None,
            deadline: None,
            expected_trans_time: 0.0,
            rtt: 0.0,
            inter_probe_rtts: 0.0,
            d3_desired: 0.0,
            d3_previous: 0.0,
            d3_allocated: 0.0,
            rcp_rate: f64::INFINITY,
        }
    }
}

impl Default for SchedulingHeader {
    fn default() -> Self {
        SchedulingHeader::new(f64::INFINITY)
    }
}

/// A simulated packet.
///
/// Packets are routed by flow: the simulator keeps the forward path of every flow and
/// moves the packet hop by hop; `hop` is the index of the next traversal step in the
/// current direction. Sequence numbers are in bytes for data packets (`seq` = offset of
/// the first payload byte) which keeps TCP-style cumulative ACKs and rate-based
/// protocols uniform.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// Packet kind.
    pub kind: PacketKind,
    /// Byte offset of the first payload byte (data) or an opaque counter (control).
    pub seq: u64,
    /// Cumulative acknowledgment: the next byte expected by the receiver.
    pub ack: u64,
    /// Payload bytes carried (0 for control packets).
    pub payload: u32,
    /// Total wire size in bytes (payload + headers); used for queueing and serialization.
    pub wire_size: u32,
    /// Source host of the *flow* (not of this packet; ACKs also carry the flow's source).
    pub src: NodeId,
    /// Destination host of the flow.
    pub dst: NodeId,
    /// True if the packet travels from receiver back to sender (ACK direction).
    pub reverse: bool,
    /// Index of the next hop to traverse along the (possibly reversed) flow path.
    pub hop: usize,
    /// Scheduling header.
    pub sched: SchedulingHeader,
    /// Time the packet was handed to the NIC by the transport (for RTT sampling).
    pub sent_at: SimTime,
    /// Dense index of `flow` in the engine's flow slab, stamped by the engine when the
    /// packet enters the network. Lets every subsequent hop resolve the flow with a
    /// direct `Vec` index instead of a hash lookup. [`INVALID_FLOW_SLOT`] until stamped.
    pub(crate) flow_slot: u32,
}

/// Sentinel for a packet the engine has not stamped with a flow-slab index yet.
pub(crate) const INVALID_FLOW_SLOT: u32 = u32::MAX;

impl Packet {
    /// Create a data packet of `payload` bytes starting at byte offset `seq`.
    pub fn data(flow: FlowId, src: NodeId, dst: NodeId, seq: u64, payload: u32) -> Self {
        Packet {
            flow,
            kind: PacketKind::Data,
            seq,
            ack: 0,
            payload,
            wire_size: payload + BASE_HEADER_BYTES + SCHED_HEADER_BYTES,
            src,
            dst,
            reverse: false,
            hop: 0,
            sched: SchedulingHeader::default(),
            sent_at: SimTime::ZERO,
            flow_slot: INVALID_FLOW_SLOT,
        }
    }

    /// Create a zero-payload control packet of the given kind.
    pub fn control(kind: PacketKind, flow: FlowId, src: NodeId, dst: NodeId) -> Self {
        Packet {
            flow,
            kind,
            seq: 0,
            ack: 0,
            payload: 0,
            wire_size: CONTROL_PACKET_BYTES,
            src,
            dst,
            reverse: kind.is_reverse(),
            hop: 0,
            sched: SchedulingHeader::default(),
            sent_at: SimTime::ZERO,
            flow_slot: INVALID_FLOW_SLOT,
        }
    }

    /// Build the ACK a receiver sends in response to this forward packet, echoing the
    /// scheduling header (PDQ receiver behaviour, §3.2).
    pub fn make_echo(&self, kind: PacketKind, ack: u64) -> Packet {
        let mut p = Packet::control(kind, self.flow, self.src, self.dst);
        p.reverse = true;
        p.seq = self.seq;
        p.ack = ack;
        p.sched = self.sched;
        p.sent_at = self.sent_at;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_constants_are_consistent() {
        assert_eq!(
            MSS_BYTES + BASE_HEADER_BYTES + SCHED_HEADER_BYTES,
            MTU_BYTES
        );
        assert_eq!(CONTROL_PACKET_BYTES, 56);
    }

    #[test]
    fn data_packet_wire_size() {
        let p = Packet::data(FlowId(1), NodeId(0), NodeId(1), 0, MSS_BYTES);
        assert_eq!(p.wire_size, MTU_BYTES);
        assert!(!p.reverse);
        assert_eq!(p.kind, PacketKind::Data);
    }

    #[test]
    fn control_packet_direction() {
        let syn = Packet::control(PacketKind::Syn, FlowId(1), NodeId(0), NodeId(1));
        assert!(!syn.reverse);
        let ack = Packet::control(PacketKind::Ack, FlowId(1), NodeId(0), NodeId(1));
        assert!(ack.reverse);
        assert_eq!(ack.payload, 0);
        assert_eq!(ack.wire_size, CONTROL_PACKET_BYTES);
    }

    #[test]
    fn echo_copies_header_and_flips_direction() {
        let mut d = Packet::data(FlowId(9), NodeId(0), NodeId(1), 1000, 500);
        d.sched.rate = 123.0;
        d.sched.expected_trans_time = 0.5;
        let a = d.make_echo(PacketKind::Ack, 1500);
        assert!(a.reverse);
        assert_eq!(a.ack, 1500);
        assert_eq!(a.seq, 1000);
        assert_eq!(a.sched.rate, 123.0);
        assert_eq!(a.sched.expected_trans_time, 0.5);
        assert_eq!(a.flow, d.flow);
    }

    #[test]
    fn forward_header_kinds() {
        assert!(PacketKind::Data.carries_forward_header());
        assert!(PacketKind::Probe.carries_forward_header());
        assert!(PacketKind::Syn.carries_forward_header());
        assert!(!PacketKind::Ack.carries_forward_header());
        assert!(PacketKind::Term.is_forward());
        assert!(PacketKind::SynAck.is_reverse());
    }
}
