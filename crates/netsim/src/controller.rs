//! Switch-side per-link protocol logic.
//!
//! PDQ, RCP and D3 all attach their scheduling intelligence to switch output ports.
//! In this simulator each unidirectional link whose source is a switch may carry a
//! [`LinkController`]: it sees every forward-direction packet just before it is queued
//! on the link, every reverse-direction (ACK) packet when it passes back through the
//! switch that owns the link, and optionally receives periodic ticks (for rate
//! controllers that update once or twice per RTT).

use crate::network::Link;
use crate::packet::Packet;
use crate::time::SimTime;

/// Per-output-port protocol logic installed on a switch egress link.
pub trait LinkController {
    /// Called once before the simulation starts. Return `Some(t)` to receive
    /// [`LinkController::on_tick`] at absolute time `t` (and further ticks as returned
    /// by `on_tick`), or `None` for a purely packet-driven controller.
    fn init(&mut self, _now: SimTime, _link: &Link) -> Option<SimTime> {
        None
    }

    /// A forward-direction packet (SYN, DATA, probe or TERM) is about to be enqueued on
    /// this link. The controller may rewrite the packet's scheduling header.
    fn on_forward(&mut self, packet: &mut Packet, now: SimTime, link: &Link);

    /// A reverse-direction packet (SYN-ACK, ACK, TERM-ACK) belonging to a flow whose
    /// forward path uses this link is passing back through the owning switch. The
    /// controller may rewrite the echoed scheduling header.
    fn on_reverse(&mut self, packet: &mut Packet, now: SimTime, link: &Link);

    /// Periodic tick. Return the absolute time of the next tick, or `None` to stop.
    fn on_tick(&mut self, _now: SimTime, _link: &Link) -> Option<SimTime> {
        None
    }

    /// A human-readable name for diagnostics.
    fn name(&self) -> &'static str {
        "controller"
    }
}

/// A controller that does nothing; useful as a default and in tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullController;

impl LinkController for NullController {
    fn on_forward(&mut self, _packet: &mut Packet, _now: SimTime, _link: &Link) {}
    fn on_reverse(&mut self, _packet: &mut Packet, _now: SimTime, _link: &Link) {}
    fn name(&self) -> &'static str {
        "null"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FlowId, NodeId};
    use crate::network::{LinkParams, Network};
    use crate::packet::PacketKind;

    #[test]
    fn null_controller_leaves_packets_untouched() {
        let mut net = Network::new();
        let a = net.add_host("a");
        let s = net.add_switch("s");
        let (l, _) = net.add_duplex_link(a, s, LinkParams::default());
        let link = net.link(l).clone();
        let mut ctl = NullController;
        assert_eq!(ctl.init(SimTime::ZERO, &link), None);
        let mut p = Packet::control(PacketKind::Syn, FlowId(1), NodeId(0), NodeId(1));
        let before = p.clone();
        ctl.on_forward(&mut p, SimTime::ZERO, &link);
        ctl.on_reverse(&mut p, SimTime::ZERO, &link);
        assert_eq!(p.sched, before.sched);
        assert_eq!(ctl.on_tick(SimTime::ZERO, &link), None);
        assert_eq!(ctl.name(), "null");
    }
}
