//! Static network description plus per-link runtime state (queues, counters).
//!
//! The network model follows the evaluation setup of the PDQ paper (§5.1, Figure 2):
//! hosts and switches connected by full-duplex links, each direction having its own
//! FIFO tail-drop queue bounded in bytes (default 4 MByte, as in shallow-buffered
//! data-center switches), a line rate (default 1 Gbps) and a propagation delay
//! (default 0.1 µs). A per-hop processing delay (default 25 µs) is charged when a
//! packet is received by a node.

use std::collections::VecDeque;

use crate::ids::{LinkId, NodeId};
use crate::packet::Packet;
use crate::time::SimTime;

/// Default link rate: 1 Gbps (paper §5.1).
pub const DEFAULT_LINK_RATE_BPS: f64 = 1e9;
/// Default switch buffer per output queue: 4 MByte (paper §5.1).
pub const DEFAULT_QUEUE_CAPACITY_BYTES: u64 = 4 * 1024 * 1024;
/// Default per-hop propagation delay: 0.1 µs (paper Figure 2).
pub const DEFAULT_PROP_DELAY: SimTime = SimTime(100);
/// Default per-hop processing delay: 25 µs (paper Figure 2).
pub const DEFAULT_PROCESSING_DELAY: SimTime = SimTime(25_000);

/// Which random stream a link's loss injector draws from.
///
/// The historical default draws from the engine core's own RNG stream. That keeps
/// every run self-deterministic, but the stream is *per shard* (`seed ⊕ shard id`),
/// so outcomes on lossy links depend on the shard count. [`LossStream::PerLink`]
/// instead derives an independent stream from `(seed, link id)` and consumes it in
/// the order packets are handed to that link — an order the deterministic engine
/// reproduces at every shard count, making loss draws shard-count invariant. WAN
/// long-haul links (which cross shard cuts by construction) use it; existing
/// intra-DC topologies keep [`LossStream::Engine`] so their figures are
/// byte-identical to earlier releases.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LossStream {
    /// Draw from the owning engine core's stream (`seed ⊕ shard id`).
    #[default]
    Engine,
    /// Draw from a private `(seed, link id)`-derived stream; shard-count invariant.
    PerLink,
}

/// Whether a node is an end host or a switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// End host: runs a transport agent, terminates flows.
    Host,
    /// Switch: forwards packets; its egress links may run a [`crate::LinkController`].
    Switch,
}

/// A node in the network.
#[derive(Clone, Debug)]
pub struct Node {
    /// The node id (equal to its index in [`Network::nodes`]).
    pub id: NodeId,
    /// Host or switch.
    pub kind: NodeKind,
    /// Human-readable name for traces and errors.
    pub name: String,
}

/// Counters accumulated per unidirectional link.
#[derive(Clone, Debug, Default)]
pub struct LinkStats {
    /// Wire bytes fully serialized onto the link.
    pub bytes_transmitted: u64,
    /// Packets fully serialized onto the link.
    pub packets_transmitted: u64,
    /// Packets dropped because the queue was full (tail drop).
    pub tail_drops: u64,
    /// Packets dropped by the random-loss injector.
    pub random_drops: u64,
    /// Total time the link spent transmitting.
    pub busy_time: SimTime,
    /// Largest queue occupancy observed, in bytes.
    pub max_queue_bytes: u64,
}

/// A unidirectional link with its egress FIFO tail-drop queue.
#[derive(Clone, Debug)]
pub struct Link {
    /// The link id (equal to its index in [`Network::links`]).
    pub id: LinkId,
    /// Transmitting node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Line rate in bits per second.
    pub rate_bps: f64,
    /// Propagation delay.
    pub prop_delay: SimTime,
    /// Queue capacity in bytes (tail drop beyond this).
    pub queue_capacity_bytes: u64,
    /// Probability in [0,1] that a packet handed to this link is dropped at random
    /// (used for the loss-resilience experiments, Figure 9).
    pub loss_rate: f64,
    /// Which random stream the loss injector draws from.
    pub loss_stream: LossStream,
    /// The id of the link in the opposite direction.
    pub reverse: LinkId,
    /// FIFO egress queue (packets waiting behind the one being serialized).
    pub queue: VecDeque<Packet>,
    /// Bytes currently waiting in `queue`.
    pub queue_bytes: u64,
    /// True while a packet is being serialized onto the wire.
    pub busy: bool,
    /// Counters.
    pub stats: LinkStats,
}

impl Link {
    /// Time to serialize a packet of `bytes` bytes on this link.
    pub fn transmission_time(&self, bytes: u64) -> SimTime {
        SimTime::transmission_time(bytes, self.rate_bps)
    }

    /// Instantaneous queue occupancy in bytes (excluding the packet on the wire).
    pub fn queue_bytes(&self) -> u64 {
        self.queue_bytes
    }
}

/// Parameters for creating a duplex link.
#[derive(Clone, Copy, Debug)]
pub struct LinkParams {
    /// Line rate in bits per second.
    pub rate_bps: f64,
    /// Propagation delay.
    pub prop_delay: SimTime,
    /// Queue capacity in bytes.
    pub queue_capacity_bytes: u64,
    /// Random loss probability.
    pub loss_rate: f64,
    /// Which random stream the loss injector draws from.
    pub loss_stream: LossStream,
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams {
            rate_bps: DEFAULT_LINK_RATE_BPS,
            prop_delay: DEFAULT_PROP_DELAY,
            queue_capacity_bytes: DEFAULT_QUEUE_CAPACITY_BYTES,
            loss_rate: 0.0,
            loss_stream: LossStream::Engine,
        }
    }
}

impl LinkParams {
    /// A link with the given rate and otherwise default parameters.
    pub fn with_rate(rate_bps: f64) -> Self {
        LinkParams {
            rate_bps,
            ..Default::default()
        }
    }
}

/// The static topology plus per-link runtime state.
#[derive(Clone, Debug, Default)]
pub struct Network {
    /// All nodes, indexed by [`NodeId`].
    pub nodes: Vec<Node>,
    /// All unidirectional links, indexed by [`LinkId`].
    pub links: Vec<Link>,
    /// Outgoing links of each node.
    adjacency: Vec<Vec<LinkId>>,
}

impl Network {
    /// Create an empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Add a host node.
    pub fn add_host(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(NodeKind::Host, name)
    }

    /// Add a switch node.
    pub fn add_switch(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(NodeKind::Switch, name)
    }

    fn add_node(&mut self, kind: NodeKind, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            kind,
            name: name.into(),
        });
        self.adjacency.push(Vec::new());
        id
    }

    /// Add a full-duplex link between `a` and `b`; returns the two unidirectional link
    /// ids `(a -> b, b -> a)`.
    pub fn add_duplex_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        params: LinkParams,
    ) -> (LinkId, LinkId) {
        assert!(a.index() < self.nodes.len(), "unknown node {a:?}");
        assert!(b.index() < self.nodes.len(), "unknown node {b:?}");
        assert_ne!(a, b, "self-loop links are not allowed");
        let ab = LinkId(self.links.len() as u32);
        let ba = LinkId(self.links.len() as u32 + 1);
        self.links.push(Link {
            id: ab,
            src: a,
            dst: b,
            rate_bps: params.rate_bps,
            prop_delay: params.prop_delay,
            queue_capacity_bytes: params.queue_capacity_bytes,
            loss_rate: params.loss_rate,
            loss_stream: params.loss_stream,
            reverse: ba,
            queue: VecDeque::new(),
            queue_bytes: 0,
            busy: false,
            stats: LinkStats::default(),
        });
        self.links.push(Link {
            id: ba,
            src: b,
            dst: a,
            rate_bps: params.rate_bps,
            prop_delay: params.prop_delay,
            queue_capacity_bytes: params.queue_capacity_bytes,
            loss_rate: params.loss_rate,
            loss_stream: params.loss_stream,
            reverse: ab,
            queue: VecDeque::new(),
            queue_bytes: 0,
            busy: false,
            stats: LinkStats::default(),
        });
        self.adjacency[a.index()].push(ab);
        self.adjacency[b.index()].push(ba);
        (ab, ba)
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Link accessor.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Mutable link accessor.
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.index()]
    }

    /// The reverse-direction link of `id`.
    pub fn reverse(&self, id: LinkId) -> LinkId {
        self.links[id.index()].reverse
    }

    /// Outgoing links of a node.
    pub fn outgoing(&self, node: NodeId) -> &[LinkId] {
        &self.adjacency[node.index()]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of unidirectional links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// All host node ids, in creation order.
    pub fn hosts(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Host)
            .map(|n| n.id)
            .collect()
    }

    /// All switch node ids, in creation order.
    pub fn switches(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Switch)
            .map(|n| n.id)
            .collect()
    }

    /// Breadth-first shortest path (in hops) from `src` to `dst`.
    /// Returns the node sequence and link sequence, or `None` if unreachable.
    pub fn shortest_path(&self, src: NodeId, dst: NodeId) -> Option<crate::flow::FlowPath> {
        if src == dst {
            return None;
        }
        let n = self.nodes.len();
        let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut queue = VecDeque::new();
        visited[src.index()] = true;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            if u == dst {
                break;
            }
            for &l in &self.adjacency[u.index()] {
                let v = self.links[l.index()].dst;
                if !visited[v.index()] {
                    visited[v.index()] = true;
                    prev[v.index()] = Some((u, l));
                    queue.push_back(v);
                }
            }
        }
        if !visited[dst.index()] {
            return None;
        }
        let mut nodes = vec![dst];
        let mut links = Vec::new();
        let mut cur = dst;
        while cur != src {
            let (p, l) = prev[cur.index()].unwrap();
            nodes.push(p);
            links.push(l);
            cur = p;
        }
        nodes.reverse();
        links.reverse();
        Some(crate::flow::FlowPath::new(nodes, links))
    }

    /// Reset all runtime link state (queues, counters) so the same topology can be
    /// reused for another simulation run.
    pub fn reset_runtime_state(&mut self) {
        for l in &mut self.links {
            l.queue.clear();
            l.queue_bytes = 0;
            l.busy = false;
            l.stats = LinkStats::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_network() -> (Network, Vec<NodeId>) {
        // h0 - s0 - s1 - h1
        let mut net = Network::new();
        let h0 = net.add_host("h0");
        let s0 = net.add_switch("s0");
        let s1 = net.add_switch("s1");
        let h1 = net.add_host("h1");
        net.add_duplex_link(h0, s0, LinkParams::default());
        net.add_duplex_link(s0, s1, LinkParams::default());
        net.add_duplex_link(s1, h1, LinkParams::default());
        (net, vec![h0, s0, s1, h1])
    }

    #[test]
    fn duplex_links_are_paired() {
        let (net, n) = line_network();
        assert_eq!(net.link_count(), 6);
        for l in &net.links {
            let r = net.link(l.reverse);
            assert_eq!(r.src, l.dst);
            assert_eq!(r.dst, l.src);
            assert_eq!(net.reverse(r.id), l.id);
        }
        assert_eq!(net.hosts(), vec![n[0], n[3]]);
        assert_eq!(net.switches(), vec![n[1], n[2]]);
    }

    #[test]
    fn shortest_path_on_line() {
        let (net, n) = line_network();
        let p = net.shortest_path(n[0], n[3]).unwrap();
        assert_eq!(p.nodes, vec![n[0], n[1], n[2], n[3]]);
        assert_eq!(p.hops(), 3);
        // Each link on the path must connect consecutive nodes.
        for (i, &l) in p.links.iter().enumerate() {
            assert_eq!(net.link(l).src, p.nodes[i]);
            assert_eq!(net.link(l).dst, p.nodes[i + 1]);
        }
    }

    #[test]
    fn shortest_path_unreachable_and_self() {
        let mut net = Network::new();
        let a = net.add_host("a");
        let b = net.add_host("b");
        assert!(net.shortest_path(a, b).is_none());
        assert!(net.shortest_path(a, a).is_none());
    }

    #[test]
    fn default_parameters_match_paper() {
        let p = LinkParams::default();
        assert_eq!(p.rate_bps, 1e9);
        assert_eq!(p.queue_capacity_bytes, 4 * 1024 * 1024);
        assert_eq!(p.prop_delay.as_nanos(), 100);
        assert_eq!(DEFAULT_PROCESSING_DELAY.as_micros_f64(), 25.0);
    }

    #[test]
    fn transmission_time_uses_link_rate() {
        let (net, _) = line_network();
        let l = net.link(LinkId(0));
        assert_eq!(l.transmission_time(1500).as_nanos(), 12_000);
    }

    #[test]
    #[should_panic]
    fn self_loop_rejected() {
        let mut net = Network::new();
        let a = net.add_host("a");
        net.add_duplex_link(a, a, LinkParams::default());
    }

    #[test]
    fn reset_clears_runtime_state() {
        let (mut net, _) = line_network();
        net.link_mut(LinkId(0)).queue_bytes = 100;
        net.link_mut(LinkId(0)).busy = true;
        net.link_mut(LinkId(0)).stats.tail_drops = 3;
        net.reset_runtime_state();
        assert_eq!(net.link(LinkId(0)).queue_bytes, 0);
        assert!(!net.link(LinkId(0)).busy);
        assert_eq!(net.link(LinkId(0)).stats.tail_drops, 0);
    }
}
