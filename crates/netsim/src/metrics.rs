//! Simulation results: per-flow records, link counters and time-series traces.

use std::collections::HashMap;

use crate::event::QueueStats;
use crate::flow::{FlowOutcome, FlowRecord};
use crate::ids::{FlowId, LinkId};
use crate::network::LinkStats;
use crate::time::SimTime;

/// What to sample periodically during a run.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceConfig {
    /// Sampling period. `SimTime::ZERO` disables tracing.
    pub interval: SimTime,
    /// Links whose utilization and queue occupancy are sampled.
    pub links: Vec<LinkId>,
    /// If true, per-flow goodput (acked bytes per interval) is sampled for every flow.
    pub flows: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            interval: SimTime::ZERO,
            links: Vec::new(),
            flows: false,
        }
    }
}

impl TraceConfig {
    /// True if any sampling is enabled.
    pub fn enabled(&self) -> bool {
        self.interval > SimTime::ZERO && (!self.links.is_empty() || self.flows)
    }
}

/// A single sampled point of a time series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sample {
    /// Sample time.
    pub at: SimTime,
    /// Sampled value (utilization in [0,1], queue bytes, or rate in bits/s).
    pub value: f64,
}

/// Time-series data collected during a run.
#[derive(Clone, Debug, Default)]
pub struct Traces {
    /// Link utilization over each sampling interval (bytes transmitted / capacity).
    pub link_utilization: HashMap<LinkId, Vec<Sample>>,
    /// Instantaneous link queue occupancy in bytes at each sample time.
    pub link_queue_bytes: HashMap<LinkId, Vec<Sample>>,
    /// Per-flow goodput (bits/s of acked payload) over each sampling interval.
    pub flow_goodput: HashMap<FlowId, Vec<Sample>>,
    /// Pending-event depth of the scheduler at each sample time. In a partitioned
    /// run every shard samples its own queue, so same-instant samples (one per
    /// shard, in shard order) coexist in the merged series.
    pub event_queue_depth: Vec<Sample>,
}

/// Everything a simulation run produces.
#[derive(Clone, Debug, Default)]
pub struct SimResults {
    /// Per-flow accounting, keyed by flow id.
    pub flows: HashMap<FlowId, FlowRecord>,
    /// Final per-link counters.
    pub link_stats: Vec<(LinkId, LinkStats)>,
    /// Time-series traces (if tracing was enabled).
    pub traces: Traces,
    /// Event-scheduler telemetry (summed across shards in a partitioned run; the
    /// peak is the sum of per-shard peaks, an upper bound on the global peak).
    pub queue: QueueStats,
    /// Simulated time at which the run stopped.
    pub end_time: SimTime,
}

impl SimResults {
    /// All flow records, excluding M-PDQ subflows (records whose spec has a parent).
    pub fn top_level_flows(&self) -> impl Iterator<Item = &FlowRecord> {
        self.flows.values().filter(|r| r.spec.parent.is_none())
    }

    /// Record of a single flow.
    pub fn flow(&self, id: FlowId) -> Option<&FlowRecord> {
        self.flows.get(&id)
    }

    /// Number of flows that completed.
    pub fn completed_count(&self) -> usize {
        self.top_level_flows()
            .filter(|r| r.outcome() == FlowOutcome::Completed)
            .count()
    }

    /// Mean flow completion time in seconds over completed flows matching `filter`.
    /// Returns `None` if no flow matches.
    pub fn mean_fct_secs<F: Fn(&FlowRecord) -> bool>(&self, filter: F) -> Option<f64> {
        let mut fcts: Vec<f64> = self
            .top_level_flows()
            .filter(|r| filter(r))
            .filter_map(|r| r.fct().map(|t| t.as_secs_f64()))
            .collect();
        if fcts.is_empty() {
            return None;
        }
        // f64 addition is order-sensitive at the last ulp and `flows` is a
        // HashMap with per-instance iteration order: sum in sorted order so the
        // mean is bit-identical across runs (and matches cached records).
        fcts.sort_by(f64::total_cmp);
        Some(fcts.iter().sum::<f64>() / fcts.len() as f64)
    }

    /// Mean FCT over all completed top-level flows.
    pub fn mean_fct_all_secs(&self) -> Option<f64> {
        self.mean_fct_secs(|_| true)
    }

    /// The given percentile (0..=100) of completion time over completed flows matching
    /// `filter`, in seconds.
    pub fn fct_percentile_secs<F: Fn(&FlowRecord) -> bool>(
        &self,
        percentile: f64,
        filter: F,
    ) -> Option<f64> {
        let mut fcts: Vec<f64> = self
            .top_level_flows()
            .filter(|r| filter(r))
            .filter_map(|r| r.fct().map(|t| t.as_secs_f64()))
            .collect();
        if fcts.is_empty() {
            return None;
        }
        fcts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((percentile / 100.0) * (fcts.len() as f64 - 1.0)).round() as usize;
        Some(fcts[idx.min(fcts.len() - 1)])
    }

    /// Maximum completion time over completed flows matching `filter`, in seconds.
    pub fn max_fct_secs<F: Fn(&FlowRecord) -> bool>(&self, filter: F) -> Option<f64> {
        self.top_level_flows()
            .filter(|r| filter(r))
            .filter_map(|r| r.fct().map(|t| t.as_secs_f64()))
            .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.max(x))))
    }

    /// Application throughput (paper §5.1): the fraction of deadline-constrained flows
    /// that completed before their deadline. Flows that never completed, were
    /// terminated, or finished late all count as misses. Returns `None` if there are no
    /// deadline-constrained flows.
    pub fn application_throughput(&self) -> Option<f64> {
        let mut total = 0usize;
        let mut met = 0usize;
        for r in self.top_level_flows() {
            if r.spec.deadline.is_some() {
                total += 1;
                if r.met_deadline() {
                    met += 1;
                }
            }
        }
        if total == 0 {
            None
        } else {
            Some(met as f64 / total as f64)
        }
    }

    /// Total tail-drop count across all links.
    pub fn total_tail_drops(&self) -> u64 {
        self.link_stats.iter().map(|(_, s)| s.tail_drops).sum()
    }

    /// Utilization of a link over the full run: bytes transmitted / (rate × duration).
    pub fn link_utilization(&self, link: LinkId, rate_bps: f64) -> f64 {
        let bytes = self
            .link_stats
            .iter()
            .find(|(id, _)| *id == link)
            .map(|(_, s)| s.bytes_transmitted)
            .unwrap_or(0);
        if self.end_time == SimTime::ZERO {
            return 0.0;
        }
        (bytes as f64 * 8.0) / (rate_bps * self.end_time.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowSpec;
    use crate::ids::NodeId;

    fn results_with(records: Vec<FlowRecord>) -> SimResults {
        let mut flows = HashMap::new();
        for r in records {
            flows.insert(r.spec.id, r);
        }
        SimResults {
            flows,
            link_stats: Vec::new(),
            traces: Traces::default(),
            queue: QueueStats::default(),
            end_time: SimTime::from_millis(100),
        }
    }

    fn record(id: u64, size: u64, deadline_ms: Option<u64>, done_ms: Option<u64>) -> FlowRecord {
        let mut spec = FlowSpec::new(id, NodeId(0), NodeId(1), size);
        if let Some(d) = deadline_ms {
            spec = spec.with_deadline(SimTime::from_millis(d));
        }
        let mut r = FlowRecord::new(spec);
        r.completed_at = done_ms.map(SimTime::from_millis);
        r
    }

    #[test]
    fn application_throughput_counts_only_deadline_flows() {
        let res = results_with(vec![
            record(1, 1000, Some(10), Some(5)),  // met
            record(2, 1000, Some(10), Some(15)), // missed (late)
            record(3, 1000, Some(10), None),     // missed (never finished)
            record(4, 1000, None, Some(50)),     // no deadline: ignored
        ]);
        assert_eq!(res.application_throughput(), Some(1.0 / 3.0));
        assert_eq!(res.completed_count(), 3);
    }

    #[test]
    fn no_deadline_flows_gives_none() {
        let res = results_with(vec![record(1, 1000, None, Some(5))]);
        assert_eq!(res.application_throughput(), None);
    }

    #[test]
    fn mean_and_percentile_fct() {
        let res = results_with(vec![
            record(1, 1000, None, Some(10)),
            record(2, 1000, None, Some(20)),
            record(3, 1000, None, Some(30)),
            record(4, 1000, None, None),
        ]);
        let mean = res.mean_fct_all_secs().unwrap();
        assert!((mean - 0.020).abs() < 1e-9);
        let p50 = res.fct_percentile_secs(50.0, |_| true).unwrap();
        assert!((p50 - 0.020).abs() < 1e-9);
        let p100 = res.fct_percentile_secs(100.0, |_| true).unwrap();
        assert!((p100 - 0.030).abs() < 1e-9);
        let max = res.max_fct_secs(|_| true).unwrap();
        assert!((max - 0.030).abs() < 1e-9);
    }

    #[test]
    fn subflows_are_excluded_from_summaries() {
        let mut parent = record(1, 1000, None, Some(10));
        parent.spec.parent = None;
        let mut sub = record(2, 500, None, Some(5));
        sub.spec.parent = Some(FlowId(1));
        let res = results_with(vec![parent, sub]);
        assert_eq!(res.completed_count(), 1);
    }

    #[test]
    fn empty_results() {
        let res = results_with(vec![]);
        assert_eq!(res.mean_fct_all_secs(), None);
        assert_eq!(res.application_throughput(), None);
        assert_eq!(res.total_tail_drops(), 0);
    }

    #[test]
    fn trace_config_enabled() {
        assert!(!TraceConfig::default().enabled());
        let c = TraceConfig {
            interval: SimTime::from_micros(100),
            links: vec![LinkId(0)],
            flows: false,
        };
        assert!(c.enabled());
    }
}
