//! Strongly typed identifiers for simulation entities.

use std::fmt;

/// Identifier of a node (host or switch) in the simulated network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifier of a unidirectional link. Links are always created in duplex pairs;
/// [`crate::network::Network::reverse`] maps a link to its opposite direction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

/// Identifier of a flow (or of an M-PDQ subflow, which is scheduled as its own flow).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

/// Identifier of a coflow: a group of flows with collective completion semantics (the
/// coflow finishes when its *last* member does).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoflowId(pub u64);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl LinkId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl FlowId {
    /// The raw value.
    pub fn value(self) -> u64 {
        self.0
    }
}
impl CoflowId {
    /// The raw value.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}
impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}
impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}
impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}
impl fmt::Debug for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}
impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}
impl fmt::Debug for CoflowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}
impl fmt::Display for CoflowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", NodeId(3)), "n3");
        assert_eq!(format!("{:?}", LinkId(7)), "l7");
        assert_eq!(format!("{:?}", FlowId(42)), "f42");
        assert_eq!(format!("{:?}", CoflowId(5)), "c5");
    }

    #[test]
    fn ordering() {
        assert!(FlowId(1) < FlowId(2));
        assert!(NodeId(0) < NodeId(1));
    }
}
