//! Allocation accounting for the engine hot path.
//!
//! The engine's contract (ISSUE 2 tentpole): forwarding a packet hop by hop performs
//! **zero heap allocations per hop** in steady state — flow state is resolved through
//! dense slabs, the path is shared via `Arc`, in-flight packets are parked in a
//! recycled pool, and link queues / the event heap only reallocate on (amortized,
//! logarithmic) capacity growth.
//!
//! The test pins that property with a counting global allocator: running the same
//! fixed workload over a *longer* path multiplies the number of per-hop operations
//! while holding flows, packets and agent callbacks constant, so any per-hop
//! allocation would scale the count difference with `packets × extra hops`. We assert
//! the difference stays far below that product.

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use pdq_netsim::{
    Ctx, FlowId, FlowInfo, FlowSpec, HostAgent, LinkParams, Network, Packet, PacketKind, SimConfig,
    Simulator, TimerKind, MSS_BYTES,
};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Blast sender / ACKing receiver, the minimal transport that drives the forwarding
/// hot path without protocol overhead.
struct Blast {
    received: HashMap<FlowId, u64>,
}

impl HostAgent for Blast {
    fn on_flow_arrival(&mut self, flow: &FlowInfo, ctx: &mut Ctx) {
        let mut offset = 0u64;
        while offset < flow.spec.size_bytes {
            let payload = (flow.spec.size_bytes - offset).min(MSS_BYTES as u64) as u32;
            ctx.send(Packet::data(
                flow.spec.id,
                flow.spec.src,
                flow.spec.dst,
                offset,
                payload,
            ));
            offset += payload as u64;
        }
    }
    fn on_packet(&mut self, packet: Packet, ctx: &mut Ctx) {
        if packet.kind == PacketKind::Data {
            let size = ctx.flow(packet.flow).unwrap().spec.size_bytes;
            let total = self.received.entry(packet.flow).or_insert(0);
            *total += packet.payload as u64;
            let total = *total;
            ctx.send(packet.make_echo(PacketKind::Ack, total));
            if total >= size {
                ctx.flow_completed(packet.flow);
            }
        }
    }
    fn on_timer(&mut self, _: FlowId, _: TimerKind, _: u64, _: &mut Ctx) {}
}

/// A line topology `h0 - s0 - s1 - ... - s(n-1) - h1` with `n` switches.
fn line(switches: usize) -> Network {
    let mut net = Network::new();
    let h0 = net.add_host("h0");
    let mut prev = h0;
    for i in 0..switches {
        let s = net.add_switch(format!("s{i}"));
        net.add_duplex_link(prev, s, LinkParams::default());
        prev = s;
    }
    let h1 = net.add_host("h1");
    net.add_duplex_link(prev, h1, LinkParams::default());
    net
}

/// Allocation count of running `packets` full-MSS packets (plus ACKs) end to end over
/// a line with `switches` switches. Only `sim.run()` is measured.
fn allocs_for(switches: usize, packets: u64) -> u64 {
    let net = line(switches);
    let hosts = net.hosts();
    let mut sim = Simulator::new(net, SimConfig::default());
    sim.install_agents(|_, _| {
        Box::new(Blast {
            received: HashMap::new(),
        })
    });
    sim.add_flow(FlowSpec::new(
        1,
        hosts[0],
        hosts[1],
        packets * MSS_BYTES as u64,
    ));
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let res = sim.run();
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(res.completed_count(), 1, "flow must complete");
    after - before
}

/// Zero allocations per hop: stretching the path from 2 to 12 switches adds
/// `10 extra hops × 200 packets × 2 directions = 4000` hop traversals (each a
/// link enqueue, a TransmitDone and a PacketAtNode event). If any of those allocated
/// even once per hop, the allocation delta would be ≥ 4000; container capacity growth
/// (event heap, link queues, packet pool — all amortized) stays orders of magnitude
/// below that.
#[test]
fn forwarding_does_not_allocate_per_hop() {
    const PACKETS: u64 = 200;
    // Warm up the allocator's internal structures once.
    let _ = allocs_for(2, PACKETS);
    let short = allocs_for(2, PACKETS);
    let long = allocs_for(12, PACKETS);
    let extra = long.saturating_sub(short);
    let per_hop_ops = 10 * PACKETS * 2; // extra hops × packets × (data + ack)
    eprintln!(
        "short={short} long={long} extra={extra} budget={}",
        per_hop_ops / 4
    );
    assert!(
        extra < per_hop_ops / 4,
        "path stretched by {per_hop_ops} hop traversals cost {extra} allocations \
         (short={short}, long={long}); the hot path is allocating per hop"
    );
}
