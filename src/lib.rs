//! Workspace-root crate: re-exports the PDQ reproduction crates for examples and
//! integration tests. See the individual crates for the real functionality.
pub use pdq_baselines as baselines;
pub use pdq_experiments as experiments;
pub use pdq_flowsim as flowsim;
pub use pdq_netsim as netsim;
pub use pdq_scenario as scenario;
pub use pdq_topology as topology;
pub use pdq_workloads as workloads;
