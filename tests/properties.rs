//! Property-based tests over the paper's formal claims and the core invariants of the
//! reproduction (Appendix A/B of the paper, plus conservation/capacity invariants).

use proptest::prelude::*;

use pdq::{install_pdq, Discipline, PdqParams};
use pdq_flowsim::{max_on_time_jobs, optimal_mean_fct, Job};
use pdq_netsim::{FlowOutcome, FlowSpec, SimConfig, SimTime, Simulator};
use pdq_topology::single_bottleneck;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Deadlock freedom / liveness (Appendix A): for any set of competing
    /// deadline-unconstrained flows on a shared bottleneck, every flow eventually
    /// completes — no pair of flows waits on each other forever.
    #[test]
    fn no_deadlock_every_flow_finishes(
        sizes in prop::collection::vec(10_000u64..400_000, 1..8),
        seed in 0u64..1000,
    ) {
        let topo = single_bottleneck(sizes.len(), Default::default());
        let recv = *topo.hosts.last().unwrap();
        let cfg = SimConfig {
            seed,
            max_sim_time: SimTime::from_secs(20),
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(topo.net.clone(), cfg);
        install_pdq(&mut sim, &PdqParams::full(), &Discipline::Exact);
        for (i, &s) in sizes.iter().enumerate() {
            sim.add_flow(FlowSpec::new(i as u64 + 1, topo.hosts[i], recv, s));
        }
        let res = sim.run();
        for rec in res.flows.values() {
            prop_assert_eq!(rec.outcome(), FlowOutcome::Completed,
                "flow {:?} did not finish", rec.spec.id);
        }
    }

    /// The work-conservation sanity check behind the convergence claim (Appendix B):
    /// the total time to drain all flows on one bottleneck can never beat the sum of
    /// their serialization times, and PDQ stays within a constant factor of it.
    #[test]
    fn makespan_is_close_to_serialization_bound(
        sizes in prop::collection::vec(50_000u64..300_000, 2..6),
    ) {
        let topo = single_bottleneck(sizes.len(), Default::default());
        let recv = *topo.hosts.last().unwrap();
        let mut sim = Simulator::new(topo.net.clone(), SimConfig::default());
        install_pdq(&mut sim, &PdqParams::full(), &Discipline::Exact);
        for (i, &s) in sizes.iter().enumerate() {
            sim.add_flow(FlowSpec::new(i as u64 + 1, topo.hosts[i], recv, s));
        }
        let res = sim.run();
        let makespan = res
            .flows
            .values()
            .filter_map(|r| r.completed_at)
            .max()
            .unwrap()
            .as_secs_f64();
        let bound: f64 = sizes.iter().map(|&s| s as f64 * 8.0 / 1e9).sum();
        prop_assert!(makespan >= bound * 0.95, "makespan {makespan} below physical bound {bound}");
        prop_assert!(makespan <= bound * 5.0 + 0.05,
            "makespan {makespan} too far above the bound {bound}");
    }

    /// Moore–Hodgson never schedules more jobs than fit and is monotone: relaxing every
    /// deadline can only increase the number of on-time jobs.
    #[test]
    fn optimal_scheduler_monotone_in_deadlines(
        jobs in prop::collection::vec((10_000u64..500_000, 0.005f64..0.2), 1..10),
        slack in 1.0f64..3.0,
    ) {
        let tight: Vec<Job> = jobs.iter().map(|&(s, d)| Job { size_bytes: s, deadline_secs: Some(d) }).collect();
        let loose: Vec<Job> = jobs.iter().map(|&(s, d)| Job { size_bytes: s, deadline_secs: Some(d * slack) }).collect();
        let rate = 1e9;
        let a = max_on_time_jobs(&tight, rate);
        let b = max_on_time_jobs(&loose, rate);
        prop_assert!(a <= jobs.len());
        prop_assert!(b >= a, "relaxing deadlines reduced on-time jobs: {a} -> {b}");
    }

    /// SJF mean FCT is a true lower bound: it never exceeds the fair-sharing mean FCT.
    #[test]
    fn sjf_lower_bounds_fair_sharing(
        sizes in prop::collection::vec(1_000u64..1_000_000, 1..12),
    ) {
        let jobs: Vec<Job> = sizes.iter().map(|&s| Job { size_bytes: s, deadline_secs: None }).collect();
        let sjf = optimal_mean_fct(&jobs, 1e9);
        let fair = pdq_flowsim::fair_sharing_mean_fct(&jobs, 1e9);
        prop_assert!(sjf <= fair + 1e-12, "sjf {sjf} > fair {fair}");
    }
}

/// Convergence to equilibrium (Appendix B): with a stable workload on one bottleneck,
/// PDQ converges within a few RTTs to the state where the driver (the most critical
/// flow) is sending at the full link rate and every other flow is paused. The paper's
/// bound is `P_max + 1` RTTs; allowing for flow initialization and the feedback loop we
/// check convergence within 10 RTTs and verify the equilibrium by looking at per-flow
/// goodput over the following window.
#[test]
fn converges_to_single_driver_on_stable_workload() {
    use pdq::{install_pdq, Discipline, PdqParams};
    use pdq_netsim::{FlowId, SimConfig, TraceConfig};

    let n = 6usize;
    let topo = single_bottleneck(n, Default::default());
    let recv = *topo.hosts.last().unwrap();
    let cfg = SimConfig {
        max_sim_time: SimTime::from_millis(20),
        trace: TraceConfig {
            interval: SimTime::from_millis(1),
            links: vec![],
            flows: true,
        },
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(topo.net.clone(), cfg);
    install_pdq(&mut sim, &PdqParams::full(), &Discipline::Exact);
    for i in 0..n as u64 {
        // Flow 1 is the driver: clearly the smallest remaining size.
        sim.add_flow(FlowSpec::new(
            i + 1,
            topo.hosts[i as usize],
            recv,
            2_000_000 + i * 500_000,
        ));
    }
    let res = sim.run();
    // Between 2 ms (≈ 13 RTTs, well past the convergence bound) and 10 ms (well before
    // the driver finishes its 16 ms of data), the driver must carry essentially all the
    // goodput and every other flow must be paused.
    let goodput_between = |flow: u64, lo_ms: f64, hi_ms: f64| -> f64 {
        res.traces
            .flow_goodput
            .get(&FlowId(flow))
            .map(|samples| {
                let window: Vec<f64> = samples
                    .iter()
                    .filter(|s| {
                        let t = s.at.as_millis_f64();
                        t > lo_ms && t <= hi_ms
                    })
                    .map(|s| s.value)
                    .collect();
                window.iter().sum::<f64>() / window.len().max(1) as f64
            })
            .unwrap_or(0.0)
    };
    let driver = goodput_between(1, 2.0, 10.0);
    assert!(
        driver > 0.85e9,
        "the driver should send at close to the line rate after convergence, got {driver}"
    );
    for f in 2..=n as u64 {
        let other = goodput_between(f, 2.0, 10.0);
        assert!(
            other < 0.05e9,
            "non-driver flow {f} should be paused at equilibrium, got {other}"
        );
    }
}

/// The switch-state bound of §3.3.1: with `n` concurrent flows on one link, the PDQ
/// switch tracks at most `max(2κ, min_list)` of them, far fewer than `n` when most are
/// paused. Exercised directly against the controller.
#[test]
fn switch_flow_state_stays_bounded() {
    use pdq::PdqSwitchController;
    use pdq_netsim::{
        LinkController, LinkParams, Network, NodeId, Packet, PacketKind, SchedulingHeader,
    };

    let mut net = Network::new();
    let s = net.add_switch("s");
    let h = net.add_host("h");
    let (l, _) = net.add_duplex_link(s, h, LinkParams::default());
    let mut params = PdqParams::full();
    params.min_list_size = 4;
    let mut ctl = PdqSwitchController::new(params);
    ctl.init(SimTime::ZERO, net.link(l));

    // 200 flows send their SYNs; only one can actually send on the 1 Gbps link, so the
    // list must stay near 2κ = 2 (clamped at the configured minimum of 4).
    for f in 0..200u64 {
        let mut p = Packet::control(PacketKind::Syn, pdq_netsim::FlowId(f), NodeId(1), NodeId(0));
        p.sched = SchedulingHeader::new(1e9);
        p.sched.expected_trans_time = 0.001 + f as f64 * 1e-6;
        p.sched.rtt = 150e-6;
        ctl.on_forward(&mut p, SimTime::from_micros(f), net.link(l));
        let mut ack = p.make_echo(PacketKind::Ack, 0);
        ctl.on_reverse(&mut ack, SimTime::from_micros(f), net.link(l));
    }
    assert!(
        ctl.tracked_flows() <= 8,
        "switch should keep only ~2κ flows, kept {}",
        ctl.tracked_flows()
    );
}

/// Hot-path overhaul invariants (ISSUE 2): the dense flow slab keys engine state by an
/// arrival-order slot, with a `FlowId -> slot` index absorbing arbitrary id spaces. A
/// run must therefore behave identically whether the workload numbers its flows
/// densely (1, 2, 3, ...) or sparsely (widely scattered ids) — same routing, same
/// scheduling, same per-flow results under the id mapping.
#[test]
fn sparse_and_dense_flow_id_spaces_give_identical_results() {
    use pdq_netsim::{FlowId, SimConfig};

    // Monotonic sparse mapping (stays below the M-PDQ subflow-id base of 2^48).
    let sparse = |i: u64| -> u64 { 1 + i * 9_973 + (i % 3) * 17 };
    let sizes = [137_000u64, 64_000, 254_000, 91_000, 180_500];

    let run = |map: &dyn Fn(u64) -> u64| {
        let topo = single_bottleneck(sizes.len(), Default::default());
        let recv = *topo.hosts.last().unwrap();
        let cfg = SimConfig {
            seed: 11,
            max_sim_time: SimTime::from_secs(20),
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(topo.net.clone(), cfg);
        install_pdq(&mut sim, &PdqParams::full(), &Discipline::Exact);
        for (i, &s) in sizes.iter().enumerate() {
            sim.add_flow(FlowSpec::new(map(i as u64), topo.hosts[i], recv, s));
        }
        sim.run()
    };

    let dense = run(&|i| i + 1);
    let scattered = run(&sparse);
    assert_eq!(dense.end_time, scattered.end_time, "end times diverged");
    assert_eq!(dense.flows.len(), scattered.flows.len());
    for i in 0..sizes.len() as u64 {
        let d = dense.flow(FlowId(i + 1)).unwrap();
        let s = scattered.flow(FlowId(sparse(i))).unwrap();
        assert_eq!(d.outcome(), s.outcome(), "flow {i}: outcome diverged");
        assert_eq!(d.fct(), s.fct(), "flow {i}: fct diverged");
        assert_eq!(
            d.raw_bytes_delivered, s.raw_bytes_delivered,
            "flow {i}: delivered bytes diverged"
        );
        assert_eq!(d.drops, s.drops, "flow {i}: drop counts diverged");
    }
    // Link behaviour must agree too (same topology, same link ids).
    for ((la, sa), (lb, sb)) in dense.link_stats.iter().zip(scattered.link_stats.iter()) {
        assert_eq!(la, lb);
        assert_eq!(sa.bytes_transmitted, sb.bytes_transmitted);
        assert_eq!(sa.tail_drops, sb.tail_drops);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Seed determinism survives the event-queue overhaul (boxed arrivals, pooled
    /// packets, timer generations): two runs with the same seed agree on every
    /// per-flow result, and the result depends only on the seed.
    #[test]
    fn seed_determinism_holds_after_event_queue_change(
        sizes in prop::collection::vec(20_000u64..250_000, 2..7),
        seed in 0u64..500,
    ) {
        use pdq_netsim::SimConfig;

        let run = || {
            let topo = single_bottleneck(sizes.len(), Default::default());
            let recv = *topo.hosts.last().unwrap();
            let cfg = SimConfig { seed, max_sim_time: SimTime::from_secs(20), ..SimConfig::default() };
            let mut sim = Simulator::new(topo.net.clone(), cfg);
            install_pdq(&mut sim, &PdqParams::full(), &Discipline::Exact);
            for (i, &s) in sizes.iter().enumerate() {
                sim.add_flow(FlowSpec::new(i as u64 + 1, topo.hosts[i], recv, s));
            }
            let res = sim.run();
            let mut summary: Vec<_> = res
                .flows
                .values()
                .map(|r| (r.spec.id, r.fct(), r.raw_bytes_delivered, r.drops))
                .collect();
            summary.sort_by_key(|e| e.0);
            (summary, res.end_time)
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a, b, "same seed produced different results");
    }
}
