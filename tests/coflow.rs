//! Coflow subsystem integration tests: the CCT ≥ max-member-FCT property, and the
//! differential check of packet-level coflow completion times against the fluid-model
//! lower bound ([`pdq_flowsim::coflow_cct_lower_bounds`]).

use std::collections::BTreeMap;

use proptest::prelude::*;

use pdq::{install_pdq, Discipline, PdqParams};
use pdq_flowsim::coflow_cct_lower_bounds;
use pdq_netsim::{CoflowId, FlowSpec, SimConfig, SimTime, Simulator};
use pdq_topology::single_bottleneck;
use pdq_workloads::Coflow;

/// Run one packet-level coflow workload under coflow-aware PDQ: every group's members
/// all target the single-bottleneck receiver and arrive at t = 0, so the fluid-model
/// prefix-sum bound over the shared 1 Gbps link applies to any schedule. Returns
/// per-coflow (CCT, max member FCT) in seconds, keyed by coflow id.
fn run_coflows(groups: &[Vec<u64>]) -> BTreeMap<u64, (f64, f64)> {
    let width = groups.iter().map(|g| g.len()).max().unwrap_or(1);
    let topo = single_bottleneck(width, Default::default());
    let receiver = *topo.hosts.last().unwrap();
    let cfg = SimConfig {
        max_sim_time: SimTime::from_secs(20),
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(topo.net.clone(), cfg);
    install_pdq(&mut sim, &PdqParams::coflow(), &Discipline::Exact);
    let mut id = 1u64;
    for (k, sizes) in groups.iter().enumerate() {
        let members: Vec<FlowSpec> = sizes
            .iter()
            .enumerate()
            .map(|(i, &bytes)| {
                let spec = FlowSpec::new(id, topo.hosts[i], receiver, bytes);
                id += 1;
                spec
            })
            .collect();
        let coflow = Coflow::new(CoflowId(k as u64 + 1), SimTime::ZERO, None, members);
        for m in coflow.members {
            sim.add_flow(m);
        }
    }
    let res = sim.run();
    let mut per_coflow: BTreeMap<u64, (f64, f64)> = BTreeMap::new();
    for rec in res.flows.values() {
        let tag = rec.spec.coflow.expect("every flow is tagged");
        let done = rec
            .completed_at
            .unwrap_or_else(|| panic!("flow {:?} did not complete", rec.spec.id))
            .as_secs_f64();
        let entry = per_coflow.entry(tag.id.value()).or_insert((0.0, 0.0));
        entry.0 = entry.0.max(done); // CCT: the group's last completion
        entry.1 = entry.1.max(done); // max member FCT (same arrival t = 0)
    }
    per_coflow
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Two invariants for arbitrary same-arrival coflow mixes on one bottleneck:
    /// each coflow's CCT is at least its slowest member's FCT, and the sorted CCT
    /// vector dominates the fluid-model prefix-sum lower bound elementwise — no
    /// packet-level schedule may beat the work-conservation bound.
    #[test]
    fn cct_dominates_member_fcts_and_the_fluid_bound(
        groups in prop::collection::vec(
            prop::collection::vec(20_000u64..300_000, 1..4),
            1..5,
        ),
    ) {
        let per_coflow = run_coflows(&groups);
        prop_assert_eq!(per_coflow.len(), groups.len());
        let mut ccts: Vec<f64> = Vec::new();
        for (cct, max_fct) in per_coflow.values() {
            prop_assert!(cct + 1e-12 >= *max_fct,
                "CCT {cct} below a member FCT {max_fct}");
            ccts.push(*cct);
        }
        ccts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let works: Vec<f64> = groups
            .iter()
            .map(|g| g.iter().map(|&b| b as f64 * 8.0 / 1e9).sum())
            .collect();
        let bounds = coflow_cct_lower_bounds(&works);
        for (i, (&cct, &bound)) in ccts.iter().zip(bounds.iter()).enumerate() {
            prop_assert!(cct + 1e-9 >= bound,
                "{i}-th smallest CCT {cct} beats the fluid bound {bound}");
        }
    }
}

/// The committed CI spec is exactly the quick deadline-constrained coflow scenario,
/// so the CI run-spec smoke test and the in-process experiment exercise the same run.
#[test]
fn committed_coflow_spec_matches_the_code() {
    use pdq_experiments::{coflow::coflow_scenario, Scale};
    use pdq_workloads::DeadlineDist;

    let committed = pdq_scenario::Scenario::from_spec(include_str!("../specs/coflow_quick.scn"))
        .expect("committed spec parses");
    assert_eq!(
        committed,
        coflow_scenario(Scale::Quick, "cpdq", DeadlineDist::exponential_ms(40), 1)
    );
}

/// Differential test against the fluid model, pinned: three concurrent coflows with
/// known work (0.8 Mb, 1.2 Mb, 3.2 Mb) on the shared 1 Gbps bottleneck. The sorted
/// packet-level CCTs must dominate the prefix-sum bound [0.8 ms, 2.0 ms, 5.2 ms]
/// and stay within the protocol's overhead envelope of it (headers, handshake,
/// switchovers) — the pinned factor guards against silent efficiency regressions.
#[test]
fn pinned_coflow_ccts_track_the_fluid_bound() {
    let groups: Vec<Vec<u64>> = vec![
        vec![50_000, 50_000],           // 0.8 Mb of work
        vec![100_000, 30_000, 20_000],  // 1.2 Mb
        vec![250_000, 100_000, 50_000], // 3.2 Mb
    ];
    let per_coflow = run_coflows(&groups);
    let mut ccts: Vec<f64> = per_coflow.values().map(|&(cct, _)| cct).collect();
    ccts.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let works: Vec<f64> = groups
        .iter()
        .map(|g| g.iter().map(|&b| b as f64 * 8.0 / 1e9).sum())
        .collect();
    let bounds = coflow_cct_lower_bounds(&works);
    assert_eq!(bounds.len(), 3);
    assert!((bounds[0] - 0.0008).abs() < 1e-12, "{bounds:?}");
    assert!((bounds[1] - 0.0020).abs() < 1e-12, "{bounds:?}");
    assert!((bounds[2] - 0.0052).abs() < 1e-12, "{bounds:?}");

    for (i, (&cct, &bound)) in ccts.iter().zip(bounds.iter()).enumerate() {
        assert!(
            cct >= bound,
            "{i}-th smallest CCT {cct} beats the fluid bound {bound}"
        );
        assert!(
            cct <= bound * 1.25 + 0.001,
            "{i}-th smallest CCT {cct} too far above the fluid bound {bound}"
        );
    }
}
