//! Differential property test: the calendar/ladder [`EventQueue`] must pop the exact
//! sequence a reference binary heap over the same deterministic key would pop.
//!
//! This is the property the partitioned engine's shard-count invariance rests on:
//! the scheduler may restructure *how* events are stored (bucket wheel, lazy sorts,
//! overflow spills), but the popped order — including same-instant ties broken by
//! `(created, class, content, seq)` and events ingested with explicit
//! `schedule_created` stamps — must stay bit-identical to a total-order heap.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::prelude::*;

use pdq_netsim::event::{Event, EventKind, EventQueue, PacketSlot, TimerKind};
use pdq_netsim::{FlowId, LinkId, NodeId, SimTime};

/// The straightforward model: a min-heap over [`Event`]'s public `Ord` (the full
/// deterministic key), with the same seq stamping and clock the real queue uses.
struct RefQueue {
    heap: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
    now: SimTime,
}

impl RefQueue {
    fn new() -> Self {
        RefQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    fn set_now(&mut self, now: SimTime) {
        self.now = now;
    }

    fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let created = self.now;
        self.schedule_created(at, created, kind);
    }

    fn schedule_created(&mut self, at: SimTime, created: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Event {
            at,
            created,
            seq,
            kind,
        }));
    }

    fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    fn pop_window(&mut self, until: SimTime) -> Option<Event> {
        if self.heap.peek().is_some_and(|Reverse(e)| e.at < until) {
            self.pop()
        } else {
            None
        }
    }
}

/// A content-bearing event kind derived from the op's payload, cycling through every
/// class so ties exercise class ranks, flow/link ids, packet ties and timer tokens.
fn kind_for(sel: u64, a: u64) -> EventKind {
    match sel % 6 {
        0 => EventKind::Timer {
            node: NodeId((a % 3) as u32),
            flow: FlowId(a % 7),
            kind: TimerKind::Rto,
            token: a,
            gen: 0,
        },
        1 => EventKind::Timer {
            node: NodeId((a % 3) as u32),
            flow: FlowId(a % 5),
            kind: TimerKind::Pacing,
            token: a / 2,
            gen: 1,
        },
        2 => EventKind::PacketAtNode {
            node: NodeId((a % 4) as u32),
            packet: PacketSlot(0), // pool slots never participate in ordering
            flow: FlowId(a % 7),
            tie: a.wrapping_mul(0x9E37),
        },
        3 => EventKind::TransmitDone {
            link: LinkId((a % 4) as u32),
        },
        4 => EventKind::ControllerTick {
            link: LinkId((a % 4) as u32),
        },
        _ => EventKind::TraceSample,
    }
}

/// Full observable identity of a popped event. `Event`'s `PartialEq` compares the
/// ordering key; the debug string additionally pins every payload field.
fn ident(e: &Event) -> (u64, u64, u64, String) {
    (
        e.at.as_nanos(),
        e.created.as_nanos(),
        e.seq,
        format!("{:?}", e.kind),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random interleavings of pushes (relative and absolute coarse-grained times —
    /// lots of exact ties), explicit `schedule_created` stamps, single pops and
    /// batched window drains, across random bucket widths (1 ns to well past the
    /// whole schedule, so everything from per-event buckets to one-bucket-fits-all
    /// degenerate layouts is exercised). Both queues must agree op by op.
    #[test]
    fn calendar_queue_matches_reference_heap(
        ops in prop::collection::vec((0u8..10, 0u64..600, 0u64..12, 0u64..5), 1..300),
        width in 1u64..2_000_000,
    ) {
        let mut cal = EventQueue::with_bucket_width(SimTime::from_nanos(width));
        let mut reference = RefQueue::new();
        for &(op, a, sel, c) in &ops {
            match op {
                // Pushes outnumber pops ~2:1 so the queues actually fill up.
                0..=6 => {
                    // Coarse grids force exact at-collisions; odd ops use absolute
                    // times that may land in the past (behind `now`), which the
                    // engine never does but the queue must still order correctly
                    // (cross-shard ingests clamp to `now`, the boundary case).
                    let at = if op % 2 == 0 {
                        cal.peek_time(); // exercise peek on the cold path too
                        SimTime::from_nanos(
                            reference.now.as_nanos() + (a % 40) * 2_500,
                        )
                    } else {
                        SimTime::from_nanos((a % 120) * 3_000)
                    };
                    let kind = kind_for(sel, a);
                    if c == 0 {
                        cal.schedule(at, kind.clone());
                        reference.schedule(at, kind);
                    } else {
                        // Explicit creation stamp, possibly before `now` — the
                        // cross-shard ingestion path.
                        let created = at.saturating_sub(SimTime::from_nanos(c * 1_000));
                        cal.schedule_created(at, created, kind.clone());
                        reference.schedule_created(at, created, kind);
                    }
                }
                7 => {
                    let got = cal.pop();
                    let want = reference.pop();
                    prop_assert_eq!(
                        got.as_ref().map(ident),
                        want.as_ref().map(ident)
                    );
                    if let Some(ev) = got {
                        cal.set_now(ev.at);
                        reference.set_now(ev.at);
                    }
                }
                _ => {
                    // Batched window drain, deliberately misaligned with the
                    // bucket width: both queues must stop at exactly the same
                    // boundary event.
                    let until = SimTime::from_nanos(
                        reference.now.as_nanos() + (a % 50) * 1_700 + 1,
                    );
                    loop {
                        let got = cal.pop_window(until);
                        let want = reference.pop_window(until);
                        prop_assert_eq!(
                            got.as_ref().map(ident),
                            want.as_ref().map(ident)
                        );
                        let Some(ev) = got else { break };
                        cal.set_now(ev.at);
                        reference.set_now(ev.at);
                    }
                }
            }
            prop_assert_eq!(cal.len(), reference.heap.len());
        }
        // Drain to empty: the tails must match event for event.
        loop {
            let got = cal.pop();
            let want = reference.pop();
            prop_assert_eq!(got.as_ref().map(ident), want.as_ref().map(ident));
            if got.is_none() {
                break;
            }
        }
        prop_assert!(cal.is_empty());
        let stats = cal.stats();
        prop_assert_eq!(stats.pushes, stats.pops);
    }
}
