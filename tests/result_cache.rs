//! Integration tests for the fingerprint-keyed result cache against the real
//! paper registry: golden request-fingerprint values (one per backend) that pin
//! the on-disk cache key format, and cache-served sweeps whose summaries match
//! fresh runs on every headline metric and on the determinism fingerprint.

use std::path::PathBuf;

use pdq_netsim::{FlowSpec, NodeId, SimTime};
use pdq_repro::scenario::{
    request_fingerprint, CachePolicy, ProtocolRegistry, ResultCache, Scenario, SimBackend, Sweep,
    TopologySpec, WorkloadSpec,
};
use pdq_workloads::{DeadlineDist, SizeDist};

fn paper_registry() -> ProtocolRegistry {
    let mut registry = ProtocolRegistry::new();
    pdq::register_pdq(&mut registry);
    pdq_baselines::register_baselines(&mut registry);
    registry
}

fn temp_cache(tag: &str) -> (PathBuf, ResultCache) {
    let dir = std::env::temp_dir().join(format!("pdq-result-cache-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cache = ResultCache::open(&dir).unwrap();
    (dir, cache)
}

/// One deterministic scenario per backend. These are also the golden-fingerprint
/// subjects, so they must never drift: any edit here invalidates the pinned
/// values below *by design* (a changed request is a different cache key).
fn packet_scenario() -> Scenario {
    Scenario::new("golden-packet")
        .workload(WorkloadSpec::QueryAggregation {
            flows: 6,
            sizes: SizeDist::query(),
            deadlines: DeadlineDist::paper_default(),
        })
        .protocol("pdq(full)")
        .seed(1)
}

fn flow_scenario() -> Scenario {
    Scenario::new("golden-flow")
        .backend(SimBackend::Flow)
        .workload(WorkloadSpec::QueryAggregation {
            flows: 6,
            sizes: SizeDist::query(),
            deadlines: DeadlineDist::paper_default(),
        })
        .protocol("rcp")
        .seed(2)
}

fn fluid_scenario() -> Scenario {
    let flows = vec![
        FlowSpec::new(1, NodeId(1), NodeId(4), 50_000),
        FlowSpec::new(2, NodeId(2), NodeId(4), 20_000),
        FlowSpec::new(3, NodeId(3), NodeId(4), 80_000),
    ];
    Scenario::new("golden-fluid")
        .backend(SimBackend::Fluid)
        .topology(TopologySpec::SingleBottleneck {
            senders: 3,
            access_loss: 0.0,
        })
        .workload(WorkloadSpec::Manual(flows))
        .stop_at(SimTime::from_secs(60))
        .protocol("tcp")
}

/// The request fingerprint is the cache key: if these pinned values change, every
/// existing cache directory silently becomes a full miss. That must only ever
/// happen through a deliberate spec-format change, never by accident — hence one
/// golden value per backend.
#[test]
fn golden_request_fingerprints_are_pinned_per_backend() {
    for (scenario, golden) in [
        (packet_scenario(), "dca12297213276809dad8f05bbabef85"),
        (flow_scenario(), "28152bf53c172156543db34ab39ae95d"),
        (fluid_scenario(), "aae41ad88647cf7c1e7891b2092ea886"),
    ] {
        assert_eq!(
            request_fingerprint(&scenario),
            golden,
            "request fingerprint drifted for {}",
            scenario.name
        );
    }
    // The fingerprint ignores the display name (overlapping grids share records)
    // but keys on everything else, seed included.
    let renamed = packet_scenario().name("some-other-table-row");
    assert_eq!(
        request_fingerprint(&renamed),
        "dca12297213276809dad8f05bbabef85"
    );
    let reseeded = packet_scenario().seed(99);
    assert_ne!(
        request_fingerprint(&reseeded),
        "dca12297213276809dad8f05bbabef85"
    );
}

/// Store-then-lookup through the real registry: the cached summary reproduces the
/// fresh run's headline metrics and determinism fingerprint, per backend.
#[test]
fn cached_summaries_round_trip_real_runs_on_every_backend() {
    let registry = paper_registry();
    let (dir, cache) = temp_cache("round-trip");
    for scenario in [packet_scenario(), flow_scenario(), fluid_scenario()] {
        let fresh = scenario.run(&registry).unwrap();
        cache.store(&scenario, &fresh).unwrap();
        let cached = cache
            .lookup(&scenario)
            .unwrap_or_else(|| panic!("{}: stored record missed", scenario.name));
        assert_eq!(cached.scenario, fresh.scenario);
        assert_eq!(cached.backend, fresh.backend);
        assert_eq!(cached.flows, fresh.flows);
        assert_eq!(cached.completed, fresh.completed);
        assert_eq!(cached.deadlines_met, fresh.deadlines_met);
        assert_eq!(cached.mean_fct_secs, fresh.mean_fct_secs);
        assert_eq!(cached.goodput_bytes, fresh.goodput_bytes);
        assert_eq!(cached.fingerprint(), fresh.fingerprint());
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A cache-served sweep over the real registry returns the same summaries as the
/// uncached sweep, executing nothing on the second pass.
#[test]
fn cache_served_sweeps_match_uncached_sweeps_cell_for_cell() {
    let registry = paper_registry();
    let (dir, cache) = temp_cache("sweep");
    let sweep = Sweep::new(vec![packet_scenario(), flow_scenario(), fluid_scenario()]);
    let uncached = sweep.run(&registry, 2).unwrap();
    let first = sweep
        .run_cached(&registry, 2, Some(&cache), CachePolicy::ReadWrite, None)
        .unwrap();
    assert_eq!((first.cache_hits, first.executed), (0, 3));
    let second = sweep
        .run_cached(&registry, 2, Some(&cache), CachePolicy::ReadWrite, None)
        .unwrap();
    assert_eq!((second.cache_hits, second.executed), (3, 0));
    for ((fresh, warm), hit) in uncached.iter().zip(&first.summaries).zip(&second.summaries) {
        assert_eq!(fresh.fingerprint(), warm.fingerprint());
        assert_eq!(fresh.fingerprint(), hit.fingerprint());
        assert_eq!(fresh.scenario, hit.scenario);
        assert_eq!(fresh.mean_fct_secs, hit.mean_fct_secs);
        assert_eq!(fresh.end_time, hit.end_time);
    }
    std::fs::remove_dir_all(&dir).ok();
}
