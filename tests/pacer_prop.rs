//! Property tests for the RFC 9002-style token-bucket pacer: a sender that
//! obeys [`Pacer::try_send`] / [`Pacer::next_ready`] never exceeds the
//! configured rate over *any* window by more than one bucket of burst.

use proptest::prelude::*;

use pdq_netsim::{Pacer, PacerConfig, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Drive a pacer the way the paced senders do — try to send, and on refusal
    /// sleep until `next_ready` — then check the token-bucket guarantee over
    /// every send-to-send window: bytes ≤ rate·Δt/8 + burst.
    #[test]
    fn paced_sends_never_exceed_the_rate_over_any_window(
        rate_mbps in 1u64..10_000,
        burst_packets in 1u64..16,
        sizes in prop::collection::vec(64u64..=1500, 2..60),
    ) {
        let burst_bytes = burst_packets * 1500;
        let config = PacerConfig {
            burst_bytes,
            ..PacerConfig::default()
        };
        let rate = (rate_mbps * 1_000_000) as f64;
        let mut pacer = Pacer::new(config);
        let mut now = SimTime::ZERO;
        pacer.set_rate_bps(now, rate);

        let mut sends: Vec<(SimTime, u64)> = Vec::new();
        for &bytes in &sizes {
            loop {
                if pacer.try_send(now, bytes) {
                    sends.push((now, bytes));
                    break;
                }
                let at = pacer.next_ready(now, bytes);
                prop_assert!(at > now, "next_ready must make progress");
                now = at;
            }
        }

        for i in 0..sends.len() {
            for j in i..sends.len() {
                let dt = (sends[j].0 - sends[i].0).as_secs_f64();
                let window_bytes: u64 = sends[i..=j].iter().map(|s| s.1).sum();
                // The window's first send may drain a full bucket; the +2 covers
                // the sub-nanosecond rounding of `next_ready`.
                let bound = rate * dt / 8.0 + burst_bytes as f64 + 2.0;
                prop_assert!(
                    (window_bytes as f64) <= bound,
                    "window [{},{}]: {} bytes in {:.9}s exceeds the {:.1}-byte bound",
                    i, j, window_bytes, dt, bound
                );
            }
        }
    }

    /// A mid-stream rate *decrease* must not let previously-earned headroom
    /// leak through: after the change, windows that start at or after the
    /// change obey the new, lower rate.
    #[test]
    fn rate_decreases_take_effect_immediately(
        high_mbps in 100u64..10_000,
        low_div in 2u64..20,
        sizes in prop::collection::vec(500u64..=1500, 4..40),
    ) {
        let config = PacerConfig::default();
        let high = (high_mbps * 1_000_000) as f64;
        let low = high / low_div as f64;
        let mut pacer = Pacer::new(config);
        let mut now = SimTime::ZERO;
        pacer.set_rate_bps(now, high);

        // Burn the initial bucket at the high rate.
        let half = sizes.len() / 2;
        for &bytes in &sizes[..half] {
            while !pacer.try_send(now, bytes) {
                now = pacer.next_ready(now, bytes);
            }
        }
        pacer.set_rate_bps(now, low);

        let mut sends: Vec<(SimTime, u64)> = Vec::new();
        for &bytes in &sizes[half..] {
            loop {
                if pacer.try_send(now, bytes) {
                    sends.push((now, bytes));
                    break;
                }
                now = pacer.next_ready(now, bytes);
            }
        }
        for i in 0..sends.len() {
            for j in i..sends.len() {
                let dt = (sends[j].0 - sends[i].0).as_secs_f64();
                let window_bytes: u64 = sends[i..=j].iter().map(|s| s.1).sum();
                let bound = low * dt / 8.0 + config.burst_bytes as f64 + 2.0;
                prop_assert!(
                    (window_bytes as f64) <= bound,
                    "post-decrease window [{},{}]: {} bytes in {:.9}s exceeds {:.1}",
                    i, j, window_bytes, dt, bound
                );
            }
        }
    }
}
