//! Cross-backend differential tests: the packet-level engine, the §5.5 flow-level
//! simulator and the §2.1 fluid model are three implementations of the same
//! protocols, so where their modeling assumptions overlap they must agree — the
//! same oracle trick coflow-scheduling evaluations use to sanity-check fluid
//! models against packet simulations.
//!
//! What must agree on a single bottleneck:
//! * fair-sharing completion *order* (fluid `FairSharing` vs flow-level RCP),
//! * SJF completion *order* (fluid `SjfEdf` vs flow-level PDQ),
//! * the *set* of flows that miss agreeable deadlines (all three backends, for
//!   PDQ, RCP and D3 alike),
//! * and fluid completions themselves must be invariant to input permutation for
//!   the order-free models (property test) — only D3's first-come-first-reserve
//!   is allowed to care about arrival order.

use std::collections::BTreeSet;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use pdq_flowsim::{run_fluid, FluidFlow, FluidModel};
use pdq_netsim::{FlowSpec, NodeId, SimTime};
use pdq_repro::scenario::{
    BackendResults, ProtocolRegistry, RunSummary, Scenario, SimBackend, TopologySpec, WorkloadSpec,
};

fn registry() -> ProtocolRegistry {
    let mut registry = ProtocolRegistry::new();
    pdq::register_pdq(&mut registry);
    pdq_baselines::register_baselines(&mut registry);
    registry
}

/// A single-bottleneck scenario over an explicit flow list: sender `i` is host
/// node `i + 1`, the receiver is the last host (node `senders + 1`).
fn bottleneck_scenario(name: &str, flows: Vec<FlowSpec>, backend: SimBackend) -> Scenario {
    Scenario::new(name)
        .backend(backend)
        .topology(TopologySpec::SingleBottleneck {
            senders: flows.len(),
            access_loss: 0.0,
        })
        .workload(WorkloadSpec::Manual(flows))
        .stop_at(SimTime::from_secs(60))
}

fn flow(id: u64, n_senders: usize, size: u64) -> FlowSpec {
    FlowSpec::new(id, NodeId(id as u32), NodeId(n_senders as u32 + 1), size)
}

/// Flow ids sorted by completion time, whichever backend produced the summary.
/// Unfinished flows are excluded; ties break by id.
fn completion_order(summary: &RunSummary) -> Vec<u64> {
    let mut done: Vec<(u64, u64)> = match &summary.results {
        BackendResults::Packet(r) => r
            .top_level_flows()
            .filter_map(|r| r.completed_at.map(|t| (t.as_nanos(), r.spec.id.value())))
            .map(|(t, id)| (id, t))
            .collect(),
        BackendResults::Flow(r) => r
            .flows
            .values()
            .filter_map(|r| r.completed_at.map(|t| (r.id.value(), t.as_nanos())))
            .collect(),
        BackendResults::Fluid(r) => r
            .flows
            .iter()
            .filter_map(|r| {
                r.completion
                    .map(|c| (r.id, SimTime::from_secs_f64(c).as_nanos()))
            })
            .collect(),
        BackendResults::Cached(_) => panic!("parity tests run fresh, never from the cache"),
    };
    done.sort_by_key(|&(id, t)| (t, id));
    done.into_iter().map(|(id, _)| id).collect()
}

/// Ids of deadline-carrying flows that did not complete within their deadline.
fn missed_deadlines(summary: &RunSummary) -> BTreeSet<u64> {
    match &summary.results {
        BackendResults::Packet(r) => r
            .top_level_flows()
            .filter(|r| r.spec.deadline.is_some() && !r.met_deadline())
            .map(|r| r.spec.id.value())
            .collect(),
        BackendResults::Flow(r) => r
            .flows
            .values()
            .filter(|r| r.deadline.is_some() && !r.met_deadline())
            .map(|r| r.id.value())
            .collect(),
        BackendResults::Fluid(r) => r
            .flows
            .iter()
            .filter(|r| r.flow.deadline.is_some() && !r.met_deadline())
            .map(|r| r.id)
            .collect(),
        BackendResults::Cached(_) => panic!("parity tests run fresh, never from the cache"),
    }
}

/// Four deadline-free flows whose sizes are deliberately *not* in id order, so an
/// order comparison cannot pass by accident.
fn jumbled_sizes() -> Vec<FlowSpec> {
    vec![
        flow(1, 4, 160_000),
        flow(2, 4, 40_000),
        flow(3, 4, 220_000),
        flow(4, 4, 100_000),
    ]
}

#[test]
fn fluid_fair_sharing_order_matches_the_flow_backends_fair_share_order() {
    let reg = registry();
    // RCP is max-min fair sharing at the flow level and processor sharing in the
    // fluid model: under either, smaller flows finish strictly earlier.
    let fluid = bottleneck_scenario("fair-fluid", jumbled_sizes(), SimBackend::Fluid)
        .protocol("rcp")
        .run(&reg)
        .unwrap();
    let flow_level = bottleneck_scenario("fair-flow", jumbled_sizes(), SimBackend::Flow)
        .protocol("rcp")
        .run(&reg)
        .unwrap();
    assert_eq!(fluid.backend, SimBackend::Fluid);
    assert_eq!(flow_level.backend, SimBackend::Flow);
    assert_eq!(completion_order(&fluid), vec![2, 4, 1, 3]);
    assert_eq!(
        completion_order(&fluid),
        completion_order(&flow_level),
        "fluid fair sharing and flow-level RCP disagree on completion order"
    );
    // Both models complete every flow.
    assert_eq!(fluid.completed, 4);
    assert_eq!(flow_level.completed, 4);
}

#[test]
fn fluid_sjf_order_matches_pdqs_flow_level_order() {
    let reg = registry();
    // Deadline-free PDQ serves in SJF order both as the fluid serial schedule and
    // as flow-level criticality waterfilling.
    let fluid = bottleneck_scenario("sjf-fluid", jumbled_sizes(), SimBackend::Fluid)
        .protocol("pdq(full)")
        .run(&reg)
        .unwrap();
    let flow_level = bottleneck_scenario("sjf-flow", jumbled_sizes(), SimBackend::Flow)
        .protocol("pdq(full)")
        .run(&reg)
        .unwrap();
    assert_eq!(completion_order(&fluid), vec![2, 4, 1, 3]);
    assert_eq!(
        completion_order(&fluid),
        completion_order(&flow_level),
        "fluid SJF and flow-level PDQ disagree on completion order"
    );
    // Serial service: each fluid completion is the running sum of sizes (in
    // fluid units = bytes, at one unit per second).
    let records = fluid.fluid();
    assert_eq!(records.flow(2).unwrap().completion, Some(40_000.0));
    assert_eq!(records.flow(3).unwrap().completion, Some(520_000.0));
}

/// Flows whose deadlines are agreeable in every backend's time scale: three with
/// deadlines far beyond any backend's completion time, one (id 4) with a deadline
/// below its own serialization time everywhere — so every backend must agree that
/// exactly flow 4 misses.
///
/// Sizes stay small enough (sum < 10^4 fluid units) that even the fluid D3
/// integrator finishes every flow within its time cap.
fn agreeable_deadline_flows() -> Vec<FlowSpec> {
    let generous = SimTime::from_secs(100_000);
    vec![
        flow(1, 4, 2_000).with_deadline(generous),
        flow(2, 4, 1_000).with_deadline(generous),
        flow(3, 4, 3_000).with_deadline(generous),
        // 1.5 kB cannot beat a 1 µs deadline on a 1 Gbps link (12 µs serialization
        // alone), nor 1 500 fluid seconds vs 10^-6 fluid seconds.
        flow(4, 4, 1_500).with_deadline(SimTime::from_nanos(1_000)),
    ]
}

#[test]
fn every_backend_agrees_on_which_flows_miss_agreeable_deadlines() {
    let reg = registry();
    for protocol in ["pdq(full)", "rcp", "d3"] {
        let mut misses = Vec::new();
        for backend in SimBackend::all() {
            let summary = bottleneck_scenario("deadlines", agreeable_deadline_flows(), backend)
                .protocol(protocol)
                .run(&reg)
                .unwrap();
            assert_eq!(summary.deadline_flows, 4, "{protocol} on {backend}");
            misses.push((backend, missed_deadlines(&summary)));
        }
        let expected: BTreeSet<u64> = [4].into();
        for (backend, missed) in &misses {
            assert_eq!(
                missed, &expected,
                "{protocol} on {backend}: wrong missed-deadline set"
            );
        }
    }
}

#[test]
fn fluid_backend_summaries_are_deterministic_and_seed_independent() {
    let reg = registry();
    // The fluid model has no randomness: any seed yields the identical
    // fingerprint (the flow backend keeps its own determinism per seed).
    let base = bottleneck_scenario("det", jumbled_sizes(), SimBackend::Fluid).protocol("tcp");
    let a = base.clone().seed(1).run(&reg).unwrap();
    let b = base.clone().seed(99).run(&reg).unwrap();
    assert_eq!(a.fingerprint(), b.fingerprint());
    // And TCP — packet-only plus fluid — really runs fair sharing here.
    assert_eq!(completion_order(&a), vec![2, 4, 1, 3]);
    // But the flow backend still rejects TCP, fluid support notwithstanding.
    let err = bottleneck_scenario("det", jumbled_sizes(), SimBackend::Flow)
        .protocol("tcp")
        .run(&reg)
        .unwrap_err();
    assert!(err.to_string().contains("flow"), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fluid completions are a function of the flow *set*, not the input order,
    /// for the order-free models (fair sharing, SJF/EDF). Sizes are distinct by
    /// construction — with ties, serial service must pick some order among equals
    /// and per-id invariance cannot hold; D3 is order-sensitive by design (that
    /// is Figure 1d) and deliberately excluded.
    #[test]
    fn fluid_completions_are_permutation_invariant_to_input_order(
        n in 1usize..8,
        seed in 0u64..1_000,
        with_deadlines in prop::collection::vec(0u8..2, 8),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let flows: Vec<(u64, FluidFlow)> = (0..n)
            .map(|i| {
                let size = (i as f64 + 1.0) * 10.0 + rng.gen_range(0.0..5.0);
                let deadline = (with_deadlines[i] == 1).then_some(size * 2.0 + i as f64);
                (i as u64 + 1, FluidFlow { size, deadline })
            })
            .collect();
        // A seeded Fisher–Yates shuffle of the input order.
        let mut shuffled = flows.clone();
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, rng.gen_range(0..=i));
        }
        for model in [FluidModel::FairSharing, FluidModel::SjfEdf] {
            let base = run_fluid(model, &flows);
            let perm = run_fluid(model, &shuffled);
            for record in &base.flows {
                let other = perm.flow(record.id).expect("flow survived the shuffle");
                prop_assert_eq!(
                    record.completion, other.completion,
                    "model {:?}, flow {}", model, record.id
                );
            }
            prop_assert_eq!(base.deadlines_met(), perm.deadlines_met());
        }
    }
}
