//! Integration tests for the partitioned packet engine behind the Scenario API:
//! the determinism fingerprint must be invariant in the shard count, the committed
//! engine-scale spec must stay in sync with the code, and a pinned fingerprint
//! guards against silent cross-version determinism regressions.

use pdq_experiments::common::registry;
use pdq_experiments::scalebench::engine_scale_scenario;
use pdq_experiments::wan::wan_scenario;
use pdq_experiments::Scale;
use pdq_scenario::Scenario;

fn fingerprint_at(scenario: &Scenario, engine_threads: u32) -> String {
    scenario
        .clone()
        .engine_threads(engine_threads)
        .run(registry())
        .unwrap_or_else(|e| panic!("{e}"))
        .fingerprint()
}

/// The committed CI spec is exactly the quick engine-scale scenario, so the CI
/// determinism job and the in-process tests exercise the same run.
#[test]
fn committed_engine_scale_spec_matches_the_code() {
    let committed = Scenario::from_spec(include_str!("../specs/engine_scale_quick.scn"))
        .expect("committed spec parses");
    assert_eq!(committed, engine_scale_scenario(Scale::Quick));
}

/// The tentpole determinism claim: for a loss-free scenario with no run-time flow
/// spawning, every shard count produces the identical flow-outcome fingerprint —
/// 1 shard is the sequential engine, N shards the conservative-lookahead one.
#[test]
fn engine_scale_fingerprint_is_shard_count_invariant() {
    let scenario = engine_scale_scenario(Scale::Quick);
    let sequential = fingerprint_at(&scenario, 1);
    for shards in [2, 4] {
        assert_eq!(
            fingerprint_at(&scenario, shards),
            sequential,
            "shard count {shards} diverged from the sequential engine"
        );
    }
}

/// The committed WAN CI spec is exactly the quick WAN pacing scenario, so the CI
/// determinism job and the in-process tests exercise the same lossy paced run.
#[test]
fn committed_wan_spec_matches_the_code() {
    let committed =
        Scenario::from_spec(include_str!("../specs/wan_quick.scn")).expect("committed spec parses");
    assert_eq!(committed, wan_scenario(Scale::Quick, "pdq(full)", true));
}

/// The WAN determinism claim this PR adds: even with *lossy* long-haul links
/// crossing the shard cut (drops drawn from per-link streams, not the engine
/// stream) and paced senders, the fingerprint is invariant in the shard count.
#[test]
fn wan_fingerprint_is_shard_count_invariant_despite_loss() {
    let scenario = wan_scenario(Scale::Quick, "pdq(full)", true);
    let sequential = fingerprint_at(&scenario, 1);
    for shards in [2, 4] {
        assert_eq!(
            fingerprint_at(&scenario, shards),
            sequential,
            "shard count {shards} diverged on the lossy WAN scenario"
        );
    }
}

/// Shard-count invariance on the paper tree with deadline-constrained PDQ traffic:
/// deadline outcomes (completed vs terminated) must merge identically too.
#[test]
fn paper_tree_fingerprint_is_shard_count_invariant() {
    let scenario = Scenario::new("pin");
    assert_eq!(fingerprint_at(&scenario, 1), fingerprint_at(&scenario, 4));
}

/// Shard-count invariance for the coflow subsystem: coflow-aware PDQ derives group
/// criticality purely from static per-flow tags, so the CCT section of the
/// fingerprint must also be identical under any shard count.
#[test]
fn coflow_fingerprint_is_shard_count_invariant() {
    use pdq_scenario::{TopologySpec, WorkloadSpec};
    use pdq_workloads::{DeadlineDist, SizeDist};

    let scenario = Scenario::new("coflow-shards")
        .topology(TopologySpec::PaperTree)
        .workload(WorkloadSpec::Coflow {
            coflows: 6,
            width: 4,
            rate_coflows_per_sec: 900.0,
            sizes: SizeDist::query(),
            deadlines: DeadlineDist::paper_default(),
        })
        .protocol("cpdq")
        .seed(5);
    let sequential = fingerprint_at(&scenario, 1);
    assert!(
        sequential.contains("cct=6:"),
        "coflow metrics missing from the fingerprint: {sequential}"
    );
    for shards in [2, 4] {
        assert_eq!(
            fingerprint_at(&scenario, shards),
            sequential,
            "shard count {shards} diverged on the coflow workload"
        );
    }
}

/// The default scenario's fingerprint, pinned byte-for-byte. This run covers the
/// paper tree, the deadline workload and the full PDQ stack; if any engine or
/// protocol change alters it, that change is a determinism break (or a deliberate
/// behavior change that must update this constant and say so in its commit).
#[test]
fn default_scenario_fingerprint_is_pinned() {
    let expected = include_str!("pinned_fingerprint.txt").trim();
    assert_eq!(fingerprint_at(&Scenario::new("pin"), 1), expected);
    // The sharded engine reproduces the pinned fingerprint, not just "some
    // self-consistent" one.
    assert_eq!(fingerprint_at(&Scenario::new("pin"), 2), expected);
}
