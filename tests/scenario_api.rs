//! Integration tests for the declarative Scenario API: spec round-trips that
//! reproduce identical run results, a test-only dummy protocol installed through the
//! registry, and sweep determinism across thread counts.

use std::num::NonZeroUsize;
use std::sync::Arc;

use pdq_netsim::{
    Ctx, FlowId, FlowInfo, HostAgent, Packet, PacketKind, SimTime, Simulator, TimerKind,
};
use pdq_scenario::{
    GridBuilder, ProtocolInstaller, ProtocolRegistry, Scenario, ScenarioError, SimBackend, Sweep,
    TopologySpec, WorkloadSpec,
};
use pdq_workloads::{DeadlineDist, Pattern, SizeDist};

fn paper_registry() -> ProtocolRegistry {
    let mut registry = ProtocolRegistry::new();
    pdq::register_pdq(&mut registry);
    pdq_baselines::register_baselines(&mut registry);
    registry
}

/// Build → serialize → parse → run must give the identical run, for every workload
/// family a figure uses.
#[test]
fn spec_round_trip_reproduces_identical_runs() {
    let registry = paper_registry();
    let scenarios = vec![
        Scenario::new("qa")
            .workload(WorkloadSpec::QueryAggregation {
                flows: 6,
                sizes: SizeDist::query(),
                deadlines: DeadlineDist::paper_default(),
            })
            .protocol("pdq(full)"),
        Scenario::new("pattern")
            .workload(WorkloadSpec::Pattern {
                pattern: Pattern::RandomPermutation,
                sizes: SizeDist::UniformMean(100_000),
                deadlines: DeadlineDist::None,
                flows_per_pair: 1,
            })
            .protocol("rcp")
            .seed(3),
        Scenario::new("poisson")
            .workload(WorkloadSpec::Poisson {
                rate_flows_per_sec: 800.0,
                duration: SimTime::from_millis(40),
                sizes: SizeDist::vl2_like(),
                short_deadlines: DeadlineDist::paper_default(),
                short_flow_threshold_bytes: 40_000,
                pattern: Pattern::RandomPermutation,
            })
            .protocol("d3")
            .seed(7),
        Scenario::new("mp")
            .topology(TopologySpec::BCube { n: 2, k: 2 })
            .workload(WorkloadSpec::PermutationAtLoad {
                load: 0.5,
                sizes: SizeDist::UniformMean(200_000),
                deadlines: DeadlineDist::None,
            })
            .protocol("mpdq(2)")
            .seed(4),
    ];
    for scenario in scenarios {
        let text = scenario.to_spec();
        let parsed = Scenario::from_spec(&text).unwrap_or_else(|e| panic!("{text}\n{e}"));
        assert_eq!(parsed, scenario, "{text}");
        let a = scenario.run(&registry).unwrap();
        let b = parsed.run(&registry).unwrap();
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "round-tripped spec must reproduce the run: {}",
            scenario.name
        );
        assert!(a.flows > 0, "{} generated no flows", scenario.name);
    }
}

/// `backend = flow` scenarios round-trip through the spec format and reproduce the
/// identical run — including the fingerprint — for every protocol with a flow-level
/// model.
#[test]
fn flow_backend_spec_round_trip_and_fingerprint_determinism() {
    let registry = paper_registry();
    let base = Scenario::new("flow")
        .backend(SimBackend::Flow)
        .topology(TopologySpec::FatTree { hosts: 16 })
        .workload(WorkloadSpec::Pattern {
            pattern: Pattern::RandomPermutation,
            sizes: SizeDist::query(),
            deadlines: DeadlineDist::paper_default(),
            flows_per_pair: 2,
        })
        .seed(5)
        .stop_at(SimTime::from_secs(60));
    for protocol in ["pdq(full)", "pdq(basic)", "pdq(full;aging=2)", "rcp", "d3"] {
        let scenario = base.clone().protocol(protocol);
        let text = scenario.to_spec();
        assert!(text.contains("backend = flow"), "{text}");
        let parsed = Scenario::from_spec(&text).unwrap_or_else(|e| panic!("{text}\n{e}"));
        assert_eq!(parsed, scenario, "{text}");
        let a = scenario.run(&registry).unwrap();
        let b = parsed.run(&registry).unwrap();
        assert_eq!(a.backend, SimBackend::Flow);
        assert!(a.flows > 0 && a.completed > 0, "{protocol}");
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "round-tripped flow spec must reproduce the run: {protocol}"
        );
        // Fingerprints are deterministic across repeated runs (the flow results
        // live in a HashMap — the digest must not depend on iteration order).
        assert_eq!(
            a.fingerprint(),
            scenario.run(&registry).unwrap().fingerprint()
        );
    }
}

/// Protocols without a flow-level model reject `backend = flow` scenarios with an
/// error naming the families that do support it.
#[test]
fn flow_backend_rejects_packet_only_protocols() {
    let registry = paper_registry();
    for protocol in ["tcp", "mpdq(3)", "pdq(full;random)"] {
        let err = Scenario::new("x")
            .backend(SimBackend::Flow)
            .protocol(protocol)
            .run(&registry)
            .unwrap_err();
        let ScenarioError::Backend {
            backend, supported, ..
        } = &err
        else {
            panic!("wrong error for {protocol}: {err:?}")
        };
        assert_eq!(*backend, SimBackend::Flow);
        assert_eq!(
            supported,
            &vec!["d3".to_string(), "pdq".to_string(), "rcp".to_string()]
        );
        let msg = err.to_string();
        assert!(msg.contains("flow") && msg.contains("pdq"), "{msg}");
    }
}

/// Replicating a sweep cell across more seeds tightens the 95% confidence
/// interval: the CI half-width with 8 seeds must be below the 2-seed one.
#[test]
fn replication_shrinks_the_confidence_interval() {
    let registry = paper_registry();
    let sweep = GridBuilder::new(
        Scenario::new("ci")
            .workload(WorkloadSpec::QueryAggregation {
                flows: 6,
                sizes: SizeDist::query(),
                deadlines: DeadlineDist::paper_default(),
            })
            .protocol("rcp"),
    )
    .build()
    .unwrap();

    let few = sweep
        .run_replicated(&registry, 2, NonZeroUsize::new(2).unwrap())
        .unwrap();
    let many = sweep
        .run_replicated(&registry, 2, NonZeroUsize::new(8).unwrap())
        .unwrap();
    assert_eq!(few.len(), 1);
    assert_eq!(many.len(), 1);
    assert_eq!(few[0].seeds, vec![1, 2]);
    assert_eq!(many[0].seeds, (1..=8).collect::<Vec<u64>>());
    let few_stats = few[0].mean_fct_stats().unwrap();
    let many_stats = many[0].mean_fct_stats().unwrap();
    assert!(few_stats.ci95 > 0.0, "seeds must produce distinct FCTs");
    assert!(
        many_stats.ci95 < few_stats.ci95,
        "8-seed CI ({}) must be tighter than the 2-seed CI ({})",
        many_stats.ci95,
        few_stats.ci95
    );
    // Replication is thread-count independent, like plain sweeps: identical runs
    // per fingerprint (the metric floats may differ in the last ulp because
    // per-flow sums iterate a hash map).
    let serial = sweep
        .run_replicated(&registry, 1, NonZeroUsize::new(8).unwrap())
        .unwrap();
    for (a, b) in serial[0].runs.iter().zip(&many[0].runs) {
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
    let serial_stats = serial[0].mean_fct_stats().unwrap();
    assert!((serial_stats.mean - many_stats.mean).abs() <= 1e-12 * many_stats.mean.abs());
}

// A test-only dummy protocol: blast every flow in one burst, complete on receipt.
// It exercises the full open-registry path — nothing in the scenario crate or the
// experiment harness knows about it.
struct Blast;

impl HostAgent for Blast {
    fn on_flow_arrival(&mut self, flow: &FlowInfo, ctx: &mut Ctx) {
        let mut off = 0;
        while off < flow.spec.size_bytes {
            let pay = (flow.spec.size_bytes - off).min(1444) as u32;
            ctx.send(Packet::data(
                flow.spec.id,
                flow.spec.src,
                flow.spec.dst,
                off,
                pay,
            ));
            off += pay as u64;
        }
    }
    fn on_packet(&mut self, packet: Packet, ctx: &mut Ctx) {
        if packet.kind == PacketKind::Data {
            let size = ctx.flow(packet.flow).unwrap().spec.size_bytes;
            if packet.seq + packet.payload as u64 >= size {
                ctx.flow_completed(packet.flow);
            }
        }
    }
    fn on_timer(&mut self, _: FlowId, _: TimerKind, _: u64, _: &mut Ctx) {}
}

struct BlastInstaller;

impl ProtocolInstaller for BlastInstaller {
    fn name(&self) -> String {
        "blast".into()
    }
    fn label(&self) -> String {
        "Blast (test dummy)".into()
    }
    fn install(&self, sim: &mut Simulator) {
        sim.install_agents(|_, _| Box::new(Blast));
    }
}

/// A third-party protocol registered at runtime runs through the same scenario path
/// as the built-in schemes.
#[test]
fn dummy_protocol_installs_through_the_registry() {
    let mut registry = paper_registry();
    registry.register_instance(Arc::new(BlastInstaller));

    let scenario = Scenario::new("dummy")
        .topology(TopologySpec::SingleBottleneck {
            senders: 3,
            access_loss: 0.0,
        })
        .workload(WorkloadSpec::QueryAggregation {
            flows: 3,
            sizes: SizeDist::Fixed(30_000),
            deadlines: DeadlineDist::None,
        })
        .protocol("blast");
    let summary = scenario.run(&registry).unwrap();
    assert_eq!(summary.completed, 3);
    assert_eq!(summary.protocol_label, "Blast (test dummy)");

    // The same spec string survives serialization and still resolves.
    let parsed = Scenario::from_spec(&scenario.to_spec()).unwrap();
    assert_eq!(parsed.run(&registry).unwrap().completed, 3);

    // But an unregistered registry rejects it with the available list.
    let err = scenario.run(&paper_registry()).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("blast") && msg.contains("pdq"), "{msg}");
}

/// The sweep runner must return identical summaries in identical order regardless of
/// the worker thread count.
#[test]
fn sweep_is_deterministic_across_thread_counts() {
    let registry = paper_registry();
    let base = Scenario::new("grid").workload(WorkloadSpec::QueryAggregation {
        flows: 5,
        sizes: SizeDist::query(),
        deadlines: DeadlineDist::paper_default(),
    });
    let sweep = Sweep::grid(&base, &["pdq(full)", "tcp"], &[1, 2, 3]);
    assert_eq!(sweep.len(), 6);

    let single = sweep.run(&registry, 1).unwrap();
    for threads in [2, 4, 8] {
        let multi = sweep.run(&registry, threads).unwrap();
        assert_eq!(single.len(), multi.len());
        for (a, b) in single.iter().zip(&multi) {
            assert_eq!(a.scenario, b.scenario, "order must be scenario order");
            assert_eq!(
                a.fingerprint(),
                b.fingerprint(),
                "{threads}-thread run diverged on {}",
                a.scenario
            );
        }
    }
    // And the grid actually varies what it should: same protocol, different seeds
    // give different workloads.
    assert_ne!(single[0].fingerprint(), single[1].fingerprint());
}
