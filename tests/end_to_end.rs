//! Cross-crate integration tests: PDQ and the baselines running end to end on the
//! packet-level simulator, checked against the paper's qualitative claims and against
//! the centralized reference schedulers.

use pdq::{install_pdq, Discipline, PdqInstaller, PdqParams, PdqVariant};
use pdq_baselines::{install_rcp, install_tcp, RcpParams, TcpInstaller, TcpParams};
use pdq_experiments::common::run_packet_level;
use pdq_flowsim::{optimal_mean_fct, Job};
use pdq_netsim::{FlowId, FlowSpec, SimConfig, SimTime, Simulator, TraceConfig};
use pdq_topology::{single::default_paper_tree, single_bottleneck};
use pdq_workloads::{query_aggregation_flows, DeadlineDist, SizeDist};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// PDQ approximates SJF: on a shared bottleneck, flows finish in size order and the
/// smallest flow is never delayed by the bigger ones.
#[test]
fn pdq_finishes_flows_in_size_order() {
    let topo = single_bottleneck(4, Default::default());
    let recv = *topo.hosts.last().unwrap();
    let mut sim = Simulator::new(topo.net.clone(), SimConfig::default());
    install_pdq(&mut sim, &PdqParams::full(), &Discipline::Exact);
    let sizes = [80_000u64, 160_000, 240_000, 320_000];
    for (i, &s) in sizes.iter().enumerate() {
        sim.add_flow(FlowSpec::new(i as u64 + 1, topo.hosts[i], recv, s));
    }
    let res = sim.run();
    assert_eq!(res.completed_count(), 4);
    let fct = |i: u64| res.flow(FlowId(i)).unwrap().fct().unwrap();
    assert!(fct(1) < fct(2) && fct(2) < fct(3) && fct(3) < fct(4));
    // The smallest flow runs essentially alone: 80 KB at 1 Gbps is ~0.64 ms plus
    // per-hop overheads and the SYN handshake.
    assert!(fct(1).as_millis_f64() < 2.0, "fct(1) = {}", fct(1));
    // No packet ever needed to be dropped.
    assert_eq!(res.total_tail_drops(), 0);
}

/// Under RCP (fair sharing) the same flows all finish late and together; PDQ's mean FCT
/// is visibly better, which is the paper's central claim.
#[test]
fn pdq_beats_fair_sharing_on_mean_fct() {
    let topo = single_bottleneck(4, Default::default());
    let recv = *topo.hosts.last().unwrap();
    let sizes = [80_000u64, 160_000, 240_000, 320_000];
    let run = |pdq: bool| {
        let mut sim = Simulator::new(topo.net.clone(), SimConfig::default());
        if pdq {
            install_pdq(&mut sim, &PdqParams::full(), &Discipline::Exact);
        } else {
            install_rcp(&mut sim, &RcpParams::default());
        }
        for (i, &s) in sizes.iter().enumerate() {
            sim.add_flow(FlowSpec::new(i as u64 + 1, topo.hosts[i], recv, s));
        }
        sim.run().mean_fct_all_secs().unwrap()
    };
    let pdq_fct = run(true);
    let rcp_fct = run(false);
    assert!(
        pdq_fct < rcp_fct,
        "PDQ mean FCT {pdq_fct} should beat RCP {rcp_fct}"
    );
    // And PDQ stays within a small factor of the SJF lower bound.
    let jobs: Vec<Job> = sizes
        .iter()
        .map(|&s| Job {
            size_bytes: s,
            deadline_secs: None,
        })
        .collect();
    let lower = optimal_mean_fct(&jobs, 1e9);
    assert!(pdq_fct < 4.0 * lower, "PDQ {pdq_fct} vs optimal {lower}");
}

/// Deadline case: PDQ meets more deadlines than TCP on an aggregation burst.
#[test]
fn pdq_meets_more_deadlines_than_tcp() {
    let topo = default_paper_tree();
    let mut rng = SmallRng::seed_from_u64(3);
    let flows = query_aggregation_flows(
        &topo,
        15,
        &SizeDist::query(),
        &DeadlineDist::paper_default(),
        1,
        &mut rng,
    );
    let pdq = run_packet_level(
        &topo,
        &flows,
        &PdqInstaller::variant(PdqVariant::Full),
        3,
        TraceConfig::default(),
    );
    let tcp = run_packet_level(
        &topo,
        &flows,
        &TcpInstaller::default(),
        3,
        TraceConfig::default(),
    );
    let pdq_at = pdq.application_throughput().unwrap();
    let tcp_at = tcp.application_throughput().unwrap();
    assert!(
        pdq_at >= tcp_at,
        "PDQ application throughput {pdq_at} vs TCP {tcp_at}"
    );
    assert!(pdq_at > 0.6, "PDQ should satisfy most deadlines: {pdq_at}");
}

/// TCP still works as a plain transport on the simulator (sanity for the baseline).
#[test]
fn tcp_completes_a_transfer() {
    let topo = single_bottleneck(1, Default::default());
    let recv = *topo.hosts.last().unwrap();
    let mut sim = Simulator::new(topo.net.clone(), SimConfig::default());
    install_tcp(&mut sim, &TcpParams::default());
    sim.add_flow(FlowSpec::new(1, topo.hosts[0], recv, 500_000));
    let res = sim.run();
    assert_eq!(res.completed_count(), 1);
    let fct = res.flow(FlowId(1)).unwrap().fct().unwrap();
    // 500 KB at 1 Gbps is 4 ms of serialization; TCP's slow start costs a few RTTs.
    assert!(fct.as_millis_f64() < 20.0, "TCP fct = {fct}");
}

/// M-PDQ completes every flow and its parent records carry the completion time.
#[test]
fn multipath_pdq_completes_parents_and_subflows() {
    let topo = pdq_topology::bcube(2, 2, Default::default());
    let mut params = PdqParams::full();
    params.subflows = 3;
    let mut sim = Simulator::new(topo.net.clone(), SimConfig::default());
    sim.set_router(pdq_topology::EcmpRouter::new());
    install_pdq(&mut sim, &params, &Discipline::Exact);
    sim.add_flow(FlowSpec::new(1, topo.hosts[0], topo.hosts[5], 300_000));
    sim.add_flow(FlowSpec::new(2, topo.hosts[3], topo.hosts[6], 450_000));
    let res = sim.run();
    // Two parent flows completed...
    assert_eq!(res.completed_count(), 2);
    // ...and the subflows exist as their own records with a parent pointer.
    let subflow_records = res
        .flows
        .values()
        .filter(|r| r.spec.parent.is_some())
        .count();
    assert_eq!(subflow_records, 6);
}

/// Early Termination: hopeless deadline flows are terminated rather than completed.
#[test]
fn early_termination_gives_up_on_impossible_deadlines() {
    let topo = single_bottleneck(2, Default::default());
    let recv = *topo.hosts.last().unwrap();
    let mut sim = Simulator::new(topo.net.clone(), SimConfig::default());
    install_pdq(&mut sim, &PdqParams::full(), &Discipline::Exact);
    // 10 MB in 5 ms over 1 Gbps is impossible (needs 80 ms).
    sim.add_flow(
        FlowSpec::new(1, topo.hosts[0], recv, 10_000_000).with_deadline(SimTime::from_millis(5)),
    );
    // A feasible flow shares the link and must still meet its deadline.
    sim.add_flow(
        FlowSpec::new(2, topo.hosts[1], recv, 100_000).with_deadline(SimTime::from_millis(20)),
    );
    let res = sim.run();
    let hopeless = res.flow(FlowId(1)).unwrap();
    assert!(
        hopeless.terminated_at.is_some(),
        "flow 1 should be terminated early"
    );
    let ok = res.flow(FlowId(2)).unwrap();
    assert!(ok.met_deadline(), "flow 2 should meet its deadline");
}

/// Determinism across the whole stack: identical seeds give identical results.
#[test]
fn end_to_end_determinism() {
    let run = || {
        let topo = default_paper_tree();
        let mut rng = SmallRng::seed_from_u64(9);
        let flows = query_aggregation_flows(
            &topo,
            10,
            &SizeDist::query(),
            &DeadlineDist::paper_default(),
            1,
            &mut rng,
        );
        let res = run_packet_level(
            &topo,
            &flows,
            &PdqInstaller::variant(PdqVariant::Full),
            9,
            TraceConfig::default(),
        );
        let mut fcts: Vec<(u64, Option<SimTime>)> = res
            .flows
            .values()
            .map(|r| (r.spec.id.value(), r.fct()))
            .collect();
        fcts.sort();
        fcts
    };
    assert_eq!(run(), run());
}
