//! A third-party protocol plugged into the Scenario API.
//!
//! The experiment harness knows nothing about "StopAndWait" — it is defined here, in
//! user code, registered in a `ProtocolRegistry` next to the paper's schemes, and run
//! through the same declarative `Scenario` the figures use. The example also prints
//! the scenario's plain-text spec and a head-to-head against PDQ and TCP.
//!
//! ```text
//! cargo run --release --example custom_scenario
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use pdq_netsim::{
    Ctx, FlowId, FlowInfo, HostAgent, Packet, PacketKind, SimTime, Simulator, TimerKind, MSS_BYTES,
};
use pdq_scenario::{ProtocolInstaller, ProtocolRegistry, Scenario, TopologySpec, WorkloadSpec};
use pdq_workloads::{DeadlineDist, SizeDist};

/// A deliberately naive transport: one packet in flight per flow, retransmitted on a
/// fixed timeout. Terrible throughput — which is the point: it shows that *any*
/// `HostAgent` can compete on the paper's scenarios without touching harness code.
#[derive(Default)]
struct StopAndWait {
    /// Sender-side cumulative ack per flow (next byte offset to transmit).
    acked: HashMap<FlowId, u64>,
}

const RTO: SimTime = SimTime::from_micros(500);

impl StopAndWait {
    fn send_next(&mut self, flow: FlowId, offset: u64, ctx: &mut Ctx) {
        let Some(info) = ctx.flow(flow) else { return };
        let size = info.spec.size_bytes;
        let (src, dst) = (info.spec.src, info.spec.dst);
        if offset >= size {
            ctx.flow_completed(flow);
            return;
        }
        let pay = (size - offset).min(MSS_BYTES as u64) as u32;
        ctx.send(Packet::data(flow, src, dst, offset, pay));
        ctx.set_timer_after(flow, TimerKind::Rto, RTO, offset);
    }
}

impl HostAgent for StopAndWait {
    fn on_flow_arrival(&mut self, flow: &FlowInfo, ctx: &mut Ctx) {
        self.acked.insert(flow.spec.id, 0);
        self.send_next(flow.spec.id, 0, ctx);
    }

    fn on_packet(&mut self, packet: Packet, ctx: &mut Ctx) {
        match packet.kind {
            // Receiver side: ack every data packet cumulatively.
            PacketKind::Data => {
                let acked = packet.seq + packet.payload as u64;
                ctx.send(packet.make_echo(PacketKind::Ack, acked));
            }
            // Sender side: advance the window of one.
            PacketKind::Ack => {
                let progress = self.acked.entry(packet.flow).or_insert(0);
                if packet.ack > *progress {
                    *progress = packet.ack;
                    self.send_next(packet.flow, packet.ack, ctx);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, flow: FlowId, _kind: TimerKind, offset: u64, ctx: &mut Ctx) {
        // Only retransmit if the acked prefix has not moved past this packet.
        if self.acked.get(&flow).copied().unwrap_or(0) <= offset {
            self.send_next(flow, offset, ctx);
        }
    }
}

struct StopAndWaitInstaller;

impl ProtocolInstaller for StopAndWaitInstaller {
    fn name(&self) -> String {
        "stop_and_wait".into()
    }
    fn label(&self) -> String {
        "Stop-and-Wait".into()
    }
    fn install(&self, sim: &mut Simulator) {
        sim.install_agents(|_, _| Box::new(StopAndWait::default()));
    }
}

fn main() {
    // The paper's registry plus our own scheme.
    let mut registry = ProtocolRegistry::new();
    pdq::register_pdq(&mut registry);
    pdq_baselines::register_baselines(&mut registry);
    registry.register_instance(Arc::new(StopAndWaitInstaller));

    let scenario = Scenario::new("custom")
        .topology(TopologySpec::SingleBottleneck {
            senders: 6,
            access_loss: 0.0,
        })
        .workload(WorkloadSpec::QueryAggregation {
            flows: 6,
            sizes: SizeDist::UniformMean(100_000),
            deadlines: DeadlineDist::None,
        })
        .seed(42);

    println!("Scenario spec (feed this to `pdq-experiments run-spec`):\n");
    println!("{}", scenario.to_spec());

    println!(
        "{:<16} {:>12} {:>16} {:>14}",
        "protocol", "completed", "mean FCT [ms]", "goodput [MB]"
    );
    for protocol in ["pdq(full)", "tcp", "stop_and_wait"] {
        let summary = scenario
            .clone()
            .protocol(protocol)
            .run(&registry)
            .expect("registered protocol");
        println!(
            "{:<16} {:>9}/{:<2} {:>16.3} {:>14.2}",
            summary.protocol_label,
            summary.completed,
            summary.flows,
            summary.mean_fct_secs.map(|v| v * 1e3).unwrap_or(f64::NAN),
            summary.goodput_bytes as f64 / 1e6,
        );
    }
    println!(
        "\nStop-and-Wait was registered at runtime via ProtocolInstaller — the harness \
         and the Scenario API treat it exactly like the built-in schemes."
    );
}
