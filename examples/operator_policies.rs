//! Operator-defined scheduling policies (§3.3, §5.6, §7).
//!
//! PDQ's switches only compare the criticality that *senders advertise*, so an operator
//! can change the scheduling discipline without touching the switches. This example
//! runs the same contending workload under four sender disciplines and contrasts the
//! resulting completion times:
//!
//! * `Exact` — the paper's default: advertise the true remaining size (SJF/SRPT);
//! * `EstimatedSize` — no a-priori size knowledge, estimate from bytes already sent
//!   (Figure 10, "Flow Size Estimation");
//! * `RandomCriticality` — no size knowledge at all (Figure 10, "Random");
//! * `Aging` — exact size, but criticality grows with waiting time so long flows
//!   cannot starve (Figure 12 / §7 "Fairness").
//!
//! ```text
//! cargo run --release --example operator_policies
//! ```

use pdq::{install_pdq, Discipline, PdqParams};
use pdq_netsim::{FlowId, FlowSpec, SimConfig, SimTime, Simulator};
use pdq_topology::single_bottleneck;

/// One long flow plus a steady stream of short flows on a single 1 Gbps bottleneck:
/// the scenario where SJF shines on the mean and aging matters for the tail.
fn workload(topo: &pdq_topology::Topology) -> Vec<FlowSpec> {
    let receiver = *topo.hosts.last().unwrap();
    let mut flows = vec![FlowSpec::new(1, topo.hosts[0], receiver, 3_000_000)];
    for i in 0..20u64 {
        flows.push(
            FlowSpec::new(
                i + 2,
                topo.hosts[1 + (i as usize % (topo.hosts.len() - 2))],
                receiver,
                60_000 + 10_000 * (i % 5),
            )
            .with_arrival(SimTime::from_millis(1 + i)),
        );
    }
    flows
}

fn run(discipline: &Discipline) -> (f64, f64, f64) {
    let topo = single_bottleneck(8, Default::default());
    let flows = workload(&topo);
    let cfg = SimConfig {
        max_sim_time: SimTime::from_secs(2),
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(topo.net.clone(), cfg);
    install_pdq(&mut sim, &PdqParams::full(), discipline);
    sim.add_flows(flows);
    let res = sim.run();
    let mean_ms = res.mean_fct_all_secs().unwrap_or(f64::NAN) * 1e3;
    let long_ms = res
        .flow(FlowId(1))
        .and_then(|r| r.fct())
        .map(|t| t.as_millis_f64())
        .unwrap_or(f64::NAN);
    let short_mean_ms = res
        .mean_fct_secs(|r| r.spec.id != FlowId(1))
        .unwrap_or(f64::NAN)
        * 1e3;
    (mean_ms, short_mean_ms, long_ms)
}

fn main() {
    println!("One 3 MB flow + twenty 60-100 KB flows arriving 1 ms apart, 1 Gbps bottleneck\n");
    println!(
        "{:<42} {:>14} {:>16} {:>14}",
        "sender discipline", "mean FCT [ms]", "short mean [ms]", "long FCT [ms]"
    );
    let policies: Vec<(&str, Discipline)> = vec![
        ("Exact (paper default, SJF/SRPT)", Discipline::Exact),
        (
            "EstimatedSize (update every 50 KB)",
            Discipline::EstimatedSize {
                update_bytes: 50_000,
            },
        ),
        ("RandomCriticality", Discipline::RandomCriticality),
        ("Aging (alpha = 4)", Discipline::Aging { alpha: 4.0 }),
    ];
    for (label, d) in &policies {
        let (mean, short_mean, long) = run(d);
        println!("{label:<42} {mean:>14.3} {short_mean:>16.3} {long:>14.3}");
    }
    println!(
        "\nExact knowledge gives the best mean; size estimation comes close without any \
         application changes; random criticality loses most of the benefit; aging trades \
         a little mean FCT for a tighter long-flow tail (the §7 starvation knob)."
    );
}
