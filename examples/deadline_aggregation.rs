//! Deadline-constrained query aggregation: compare PDQ, D3, RCP and TCP on the paper's
//! core metric — application throughput, the fraction of flows meeting their deadline
//! (§5.2.1, Figure 3a).
//!
//! ```text
//! cargo run --release --example deadline_aggregation [n_flows]
//! ```

use pdq::PdqInstaller;
use pdq_baselines::{D3Installer, RcpInstaller, TcpInstaller};
use pdq_experiments::common::run_packet_level;
use pdq_netsim::TraceConfig;
use pdq_scenario::InstallerHandle;
use pdq_topology::single::default_paper_tree;
use pdq_workloads::{query_aggregation_flows, DeadlineDist, SizeDist};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let n_flows: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);

    let topo = default_paper_tree();
    let mut rng = SmallRng::seed_from_u64(42);
    // Query traffic: sizes uniform in [2 KB, 198 KB], deadlines exponential (mean 20 ms,
    // floored at 3 ms), everything directed at one aggregator.
    let flows = query_aggregation_flows(
        &topo,
        n_flows,
        &SizeDist::query(),
        &DeadlineDist::paper_default(),
        1,
        &mut rng,
    );

    println!(
        "{} deadline-constrained flows aggregating into one receiver on {}\n",
        flows.len(),
        topo.name
    );
    println!(
        "{:<12} {:>22} {:>18} {:>12}",
        "scheme", "application throughput", "mean FCT [ms]", "terminated"
    );
    let protocols: Vec<InstallerHandle> = vec![
        Arc::new(PdqInstaller::variant(pdq::PdqVariant::Full)),
        Arc::new(PdqInstaller::variant(pdq::PdqVariant::Basic)),
        Arc::new(D3Installer::default()),
        Arc::new(RcpInstaller::default()),
        Arc::new(TcpInstaller::default()),
    ];
    for protocol in protocols {
        let res = run_packet_level(&topo, &flows, &*protocol, 42, TraceConfig::default());
        let at = res.application_throughput().unwrap_or(f64::NAN);
        let fct = res.mean_fct_all_secs().map(|v| v * 1e3).unwrap_or(f64::NAN);
        let terminated = res
            .flows
            .values()
            .filter(|r| r.terminated_at.is_some())
            .count();
        println!(
            "{:<12} {:>21.1}% {:>18.3} {:>12}",
            protocol.label(),
            at * 100.0,
            fct,
            terminated
        );
    }
    println!(
        "\nPDQ emulates Earliest Deadline First by pausing less critical flows, so it \
         satisfies more deadlines than the fair-sharing (RCP/TCP) and first-come \
         first-reserve (D3) baselines."
    );
}
