//! The paper's motivating example (§2.1, Figure 1) under the fluid model: three flows
//! with sizes 1/2/3 and deadlines 1/4/6 share a unit-rate bottleneck.
//!
//! ```text
//! cargo run --release --example motivating_example
//! ```

use pdq_flowsim::{
    d3_completion, deadlines_met, edf_completion, fair_sharing_completion, figure1_flows,
    sjf_completion,
};

fn main() {
    let flows = figure1_flows();
    println!("Figure 1: three flows (size, deadline) = (1,1) (2,4) (3,6) on a unit-rate link\n");

    let mean = |c: &[f64]| c.iter().sum::<f64>() / c.len() as f64;
    let show = |name: &str, c: &[f64]| {
        println!(
            "{:<28} completion times = [{:.2}, {:.2}, {:.2}]  mean = {:.2}  deadlines met = {}/3",
            name,
            c[0],
            c[1],
            c[2],
            mean(c),
            deadlines_met(&flows, c)
        );
    };

    show(
        "Fair sharing (TCP/RCP/DCTCP)",
        &fair_sharing_completion(&flows),
    );
    show("SJF (PDQ, no deadlines)", &sjf_completion(&flows));
    show("EDF (PDQ, deadlines)", &edf_completion(&flows));
    show(
        "D3, arrival order B,A,C",
        &d3_completion(&flows, &[1, 0, 2]),
    );
    show(
        "D3, arrival order A,B,C",
        &d3_completion(&flows, &[0, 1, 2]),
    );

    println!(
        "\nFair sharing finishes at [3,5,6] (mean 4.67) and misses two deadlines; \
         SJF/EDF finish at [1,3,6] (mean 3.33, ~29% better) and meet every deadline. \
         D3 only matches that for the one arrival order that happens to equal EDF."
    );
}
