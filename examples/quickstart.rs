//! Quickstart: run PDQ on the paper's default 12-server tree and watch Shortest Job
//! First in action — short flows preempt long ones and finish first.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pdq::{install_pdq, Discipline, PdqParams};
use pdq_netsim::{FlowId, FlowSpec, SimConfig, Simulator};
use pdq_topology::single::default_paper_tree;

fn main() {
    // The paper's default topology: 12 servers, 4 ToR switches, 1 root, 1 Gbps links.
    let topo = default_paper_tree();
    let aggregator = *topo.hosts.last().unwrap();

    let mut sim = Simulator::new(topo.net.clone(), SimConfig::default());
    install_pdq(&mut sim, &PdqParams::full(), &Discipline::Exact);

    // Five senders start flows of very different sizes at the same instant, all towards
    // the same aggregator (the "query aggregation" pattern of §5.2).
    let sizes = [50_000u64, 500_000, 100_000, 1_000_000, 200_000];
    for (i, &size) in sizes.iter().enumerate() {
        sim.add_flow(FlowSpec::new(i as u64 + 1, topo.hosts[i], aggregator, size));
    }

    let results = sim.run();

    println!(
        "PDQ on {}: {} flows completed\n",
        topo.name,
        results.completed_count()
    );
    println!("{:<8} {:>12} {:>14}", "flow", "size [KB]", "FCT [ms]");
    let mut order: Vec<(u64, u64, f64)> = sizes
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            let fct = results
                .flow(FlowId(i as u64 + 1))
                .and_then(|r| r.fct())
                .map(|t| t.as_millis_f64())
                .unwrap_or(f64::NAN);
            (i as u64 + 1, s, fct)
        })
        .collect();
    order.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
    for (id, size, fct) in &order {
        println!("{:<8} {:>12} {:>14.3}", id, size / 1000, fct);
    }
    println!(
        "\nNote how completion order follows flow size (SJF), not arrival order: \
         the shortest flow finishes first because PDQ pauses the contending flows."
    );
    println!(
        "mean FCT = {:.3} ms",
        results.mean_fct_all_secs().unwrap_or(f64::NAN) * 1e3
    );
}
