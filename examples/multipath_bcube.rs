//! Multipath PDQ (§6): stripe flows over multiple BCube paths and compare against
//! single-path PDQ, reproducing the spirit of Figure 11.
//!
//! ```text
//! cargo run --release --example multipath_bcube [subflows]
//! ```

use pdq::PdqInstaller;
use pdq_experiments::common::run_packet_level;
use pdq_netsim::{FlowSpec, TraceConfig};
use pdq_topology::bcube;
use pdq_workloads::Pattern;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let subflows: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    // BCube(2,3): 16 servers, each with 4 NICs — plenty of parallel paths.
    let topo = bcube(2, 3, Default::default());
    let mut rng = SmallRng::seed_from_u64(5);
    let pairs = Pattern::RandomPermutation.pairs(&topo, &mut rng);
    let flows: Vec<FlowSpec> = pairs
        .into_iter()
        .enumerate()
        .map(|(i, (src, dst))| FlowSpec::new(i as u64 + 1, src, dst, 1_000_000))
        .collect();

    println!(
        "{} x 1 MB flows, random permutation on {} ({} hosts, {} links)\n",
        flows.len(),
        topo.name,
        topo.host_count(),
        topo.net.link_count()
    );
    for (label, protocol) in [
        (
            "single-path PDQ",
            PdqInstaller::variant(pdq::PdqVariant::Full),
        ),
        (
            "Multipath PDQ",
            PdqInstaller::multipath(subflows.clamp(2, 8)),
        ),
    ] {
        let res = run_packet_level(&topo, &flows, &protocol, 5, TraceConfig::default());
        println!(
            "{:<18} mean FCT = {:>8.3} ms   completed = {}/{}",
            label,
            res.mean_fct_all_secs().map(|v| v * 1e3).unwrap_or(f64::NAN),
            res.completed_count(),
            flows.len()
        );
    }
    println!(
        "\nM-PDQ splits each flow into {} subflows routed independently by flow-level \
         ECMP and periodically re-balances load from paused subflows onto the least \
         loaded sending one, exploiting BCube's parallel paths.",
        subflows.clamp(2, 8)
    );
}
